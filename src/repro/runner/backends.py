"""The backend registry: one ``execute(spec) -> RunResult`` protocol.

Built-in backends adapt the library's three simulators:

* ``phase``  — :class:`repro.net.phasesim.PhaseLevelSimulator`, the exact
  event-driven phase model behind Table 1 / Figures 1d and 2.
* ``fluid``  — :class:`repro.cc.dcqcn.DcqcnFluidSimulator`, the
  microsecond-scale DCQCN state machine (Figures 1b/1c, cross-fidelity).
* ``engine`` — a deliberately small on-off model driven directly by
  :class:`repro.sim.engine.Simulator`: one shared bottleneck, weighted
  proportional sharing, no routing. The cheapest fidelity tier, useful
  for sanity-checking the phase backend and for very large sweeps.
* ``cluster`` — :class:`repro.scheduler.simulation.ClusterSimulation`
  over a declarative list of placements (the scheduler experiments).
* ``service`` — :class:`repro.scheduler.service.ClusterService` over a
  declarative arrival process (the online scheduling experiments).

Experiment modules may :func:`register` additional backends (e.g. the
population-sweep point evaluator). A spec's ``backend_module`` names the
module to import before lookup, so worker processes that never imported
the experiment module still resolve its backend.
"""

from __future__ import annotations

import importlib
from typing import Dict, List, Mapping, Optional, Protocol, Tuple

from ..errors import ConfigError, SimulationError
from ..faults.events import RateChange
from ..faults.runtime import build_warp, emit_fault_events
from ..net.phasesim import (
    JobRun,
    PhaseLevelSimulator,
    SimulationResult,
)
from ..net.routing import Router
from ..net.topology import BOTTLENECK, Topology
from ..sim.engine import Simulator
from ..sim.rng import RandomStreams
from ..sim.trace import StepFunction
from ..units import gbps
from ..workloads.profiles import EFFECTIVE_BOTTLENECK
from .spec import (
    FluidScenarioResult,
    RunResult,
    RunSpec,
    safe_content_hash,
)

#: Name of the shared bottleneck link in generated dumbbells — the
#: canonical constant lives in :mod:`repro.net.topology`.
BOTTLENECK_LINK = BOTTLENECK


def _reject_fabric_faults(spec: RunSpec, backend: str, remedy: str) -> None:
    """Refuse fault schedules that address links a single-bottleneck run
    does not have, naming the offending links and the multi-link path.

    Only called on specs *without* a topology — with one, the schedule
    flows through to the fabric engines, which validate every link name
    against the topology themselves.
    """
    if spec.faults is None:
        return
    bad = [
        name for name in spec.faults.link_names()
        if name != BOTTLENECK_LINK
    ]
    if bad:
        raise ConfigError(
            f"{backend} backend without a topology models a single "
            f"bottleneck named {BOTTLENECK_LINK!r}, but the fault "
            f"schedule targets link(s) {bad}; set RunSpec.topology "
            f"(e.g. Topology.fat_tree) and {remedy} to run multi-link "
            "fault schedules"
        )


class Backend(Protocol):
    """What the registry stores: a named spec executor."""

    name: str

    def execute(self, spec: RunSpec) -> RunResult:
        """Run one spec to completion and return its result."""
        ...


_REGISTRY: Dict[str, Backend] = {}


def register(name: str, backend: Backend, replace: bool = False) -> None:
    """Add a backend to the registry.

    Module-level registrations should pass ``replace=True`` so repeated
    imports (parent process, pool workers) stay idempotent.
    """
    if not name:
        raise ConfigError("backend name must be non-empty")
    if name in _REGISTRY and not replace:
        raise ConfigError(f"backend {name!r} is already registered")
    _REGISTRY[name] = backend


def backend_names() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def get_backend(name: str) -> Backend:
    """Look up a backend by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown backend {name!r} (registered: {backend_names()})"
        ) from None


def resolve_backend(spec: RunSpec) -> Backend:
    """The backend executing ``spec``, importing its module if needed."""
    if spec.backend not in _REGISTRY and spec.backend_module:
        importlib.import_module(spec.backend_module)
    return get_backend(spec.backend)


def execute(spec: RunSpec) -> RunResult:
    """Resolve and run one spec (no pool, no cache)."""
    return resolve_backend(spec).execute(spec)


def dumbbell_topology(n_jobs: int, capacity: float) -> Topology:
    """The default phase-backend topology: one host pair per job,
    all pairs sharing the bottleneck :data:`BOTTLENECK_LINK`."""
    if n_jobs < 1:
        raise ConfigError("need at least one job")
    return Topology.dumbbell(
        hosts_per_side=n_jobs,
        host_capacity=capacity,
        bottleneck_capacity=capacity,
        bottleneck_name=BOTTLENECK_LINK,
    )


def _detach_events(result: SimulationResult) -> SimulationResult:
    """Drop scheduler-event references so the result pickles cleanly."""
    for run in result.jobs.values():
        run._finish_event = None
    return result


# ---------------------------------------------------------------------------
# phase
# ---------------------------------------------------------------------------

class PhaseBackend:
    """Adapter for the exact phase-level simulator."""

    name = "phase"

    def execute(self, spec: RunSpec) -> RunResult:
        if not spec.jobs:
            raise ConfigError("phase backend needs job specs")
        if spec.policy is None:
            raise ConfigError("phase backend needs a share policy")
        if spec.n_iterations < 1:
            raise ConfigError("phase backend needs n_iterations >= 1")
        capacity = spec.capacity or EFFECTIVE_BOTTLENECK
        topology = spec.topology or dumbbell_topology(
            len(spec.jobs), capacity
        )
        sim = PhaseLevelSimulator(topology, spec.policy, seed=spec.seed)
        offsets = spec.start_offsets_dict()
        gates = spec.gates_dict()
        for index, job in enumerate(spec.jobs):
            sim.add_job(
                job,
                src=f"ha{index}",
                dst=f"hb{index}",
                n_iterations=spec.n_iterations,
                start_offset=offsets.get(job.job_id, 0.0),
                gate=gates.get(job.job_id),
            )
        sim.install_faults(spec.faults)
        result = _detach_events(sim.run(until=spec.until))
        return RunResult(
            spec_hash=safe_content_hash(spec),
            backend=self.name,
            label=spec.label,
            phase=result,
        )


# ---------------------------------------------------------------------------
# fluid
# ---------------------------------------------------------------------------

def build_fluid_scenario_sim(
    spec: RunSpec,
    scenario,
    params,
    streams: RandomStreams,
    capacity: float,
):
    """Construct the simulator and on-off jobs for one scenario of a
    fluid spec.

    Shared by :class:`FluidBackend` and the batched grid tier
    (:mod:`repro.runner.grid`) so both paths build byte-identical
    simulations: same constructor arguments, same stream lookups in the
    same order, same sender/job wiring. Returns ``(sim, jobs)`` where
    ``jobs`` maps sender names to their :class:`OnOffDcqcnJob`.
    """
    from ..cc.dcqcn import DcqcnFluidSimulator, OnOffDcqcnJob

    options = spec.options_dict()
    sim_kwargs = {"capacity": capacity}
    if spec.topology is not None:
        sim_kwargs["topology"] = spec.topology
    if "dt" in options:
        sim_kwargs["dt"] = options["dt"]
    if "sample_interval" in options:
        sim_kwargs["sample_interval"] = options["sample_interval"]
    if "engine" in options:
        sim_kwargs["engine"] = options["engine"]
    if "pfc_pause_threshold" in options:
        sim_kwargs["pfc_pause_threshold"] = options[
            "pfc_pause_threshold"
        ]
    if spec.faults is not None:
        sim_kwargs["faults"] = spec.faults
    sim = DcqcnFluidSimulator(**sim_kwargs)
    jobs: Dict[str, OnOffDcqcnJob] = {}
    for sender in scenario.senders:
        rng = streams.get(sender.stream or f"dcqcn:{sender.name}")
        sender_params = params.with_timer(sender.timer)
        if sender.compute_time is None:
            sim.add_sender(
                sender.name,
                sender_params,
                rng,
                data_bytes=sender.data_bytes,
                route=sender.route,
            )
        else:
            if sender.comm_bytes is None:
                raise ConfigError(
                    f"on-off sender {sender.name!r} needs comm_bytes"
                )
            job = OnOffDcqcnJob(
                sender.name,
                sender_params,
                rng,
                compute_time=sender.compute_time,
                comm_bytes=sender.comm_bytes,
                start_offset=sender.start_offset,
            )
            jobs[sender.name] = job
            sim.add_source(job, route=sender.route)
    return sim, jobs


class FluidBackend:
    """Adapter for the fine-grained DCQCN fluid simulator.

    Scenarios run sequentially over one shared
    :class:`~repro.sim.rng.RandomStreams` — a sender whose stream name
    repeats across scenarios continues the same generator, reproducing
    the exact randomness consumption of the original fair-then-unfair
    experiment protocol.

    Without a topology the spec describes the classic single-bottleneck
    run. With ``spec.topology`` set, every sender must carry a
    ``route`` (link names) and the simulator switches to the multi-link
    fabric engines in :mod:`repro.cc.link_engine`; fault schedules may
    then target any fabric link.
    """

    name = "fluid"

    def execute(self, spec: RunSpec) -> RunResult:
        from ..cc.dcqcn import DcqcnParams

        if not spec.scenarios:
            raise ConfigError("fluid backend needs at least one scenario")
        if spec.duration <= 0:
            raise ConfigError("fluid backend needs a positive duration")
        if spec.topology is None:
            _reject_fabric_faults(
                spec, self.name,
                "give each sender a route (SenderSpec.route)",
            )
        capacity = spec.capacity or gbps(50)
        params = DcqcnParams(line_rate=capacity)
        streams = RandomStreams(spec.seed)
        scenarios: Dict[str, FluidScenarioResult] = {}
        for scenario in spec.scenarios:
            sim, jobs = build_fluid_scenario_sim(
                spec, scenario, params, streams, capacity
            )
            trace = sim.run(spec.duration)
            scenarios[scenario.name] = FluidScenarioResult(
                trace=trace,
                timelines={
                    name: job.timeline for name, job in jobs.items()
                },
            )
        return RunResult(
            spec_hash=safe_content_hash(spec),
            backend=self.name,
            label=spec.label,
            fluid=scenarios,
        )


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------

class _EngineJob:
    """Book-keeping for one job inside the engine backend."""

    __slots__ = ("run", "active", "weight")

    def __init__(self, run: JobRun, weight: float) -> None:
        self.run = run
        self.active = False
        self.weight = weight


class EngineBackend:
    """Low-fidelity on-off model over one bottleneck or a routed fabric.

    Jobs alternate compute and communication. Without a topology,
    communicating jobs split a single shared bottleneck proportionally
    to their policy weight (plain :class:`~repro.cc.fair.FairSharing`
    or :class:`~repro.cc.weighted.StaticWeighted`) — on a dumbbell this
    is exactly the phase backend's allocation, at a fraction of the
    cost. With ``spec.topology`` set, jobs become ECMP-routed flows
    allocated by the weighted max-min
    :class:`~repro.net.fluid.FluidAllocator`, so each job's rate is set
    by its most constrained hop and faults may target any fabric link.
    """

    name = "engine"

    def _weight(self, spec: RunSpec, job_id: str) -> float:
        policy = spec.policy
        if policy is None or policy.name == "fair":
            return 1.0
        weight_for_job = getattr(policy, "weight_for_job", None)
        if weight_for_job is None:
            raise ConfigError(
                "engine backend supports fair or static-weighted "
                f"policies, not {policy.name!r}"
            )
        return float(weight_for_job(job_id))

    def _build_jobs(
        self,
        spec: RunSpec,
        streams: RandomStreams,
        routes: Mapping[str, Tuple[str, ...]],
    ) -> List[_EngineJob]:
        """Job book-keeping shared by both tiers; ``routes`` maps each
        job to the link names its fault warp watches."""
        offsets = spec.start_offsets_dict()
        jobs: List[_EngineJob] = []
        for job_spec in spec.jobs:
            run = JobRun(
                spec=job_spec,
                flows=[],
                n_iterations=spec.n_iterations,
                start_offset=offsets.get(job_spec.job_id, 0.0),
                gate=None,
                rng=streams.get(f"job:{job_spec.job_id}"),
            )
            warp = build_warp(
                spec.faults, job_spec.job_id, routes[job_spec.job_id]
            )
            if warp is not None:
                run.lifecycle.warp = warp
            jobs.append(
                _EngineJob(run, self._weight(spec, job_spec.job_id))
            )
        return jobs

    def execute(self, spec: RunSpec) -> RunResult:
        if not spec.jobs:
            raise ConfigError("engine backend needs job specs")
        if spec.n_iterations < 1:
            raise ConfigError("engine backend needs n_iterations >= 1")
        if spec.topology is not None:
            return self._execute_fabric(spec)
        _reject_fabric_faults(
            spec, self.name,
            "options['placements'] = ((job_id, src_host, dst_host), ...)",
        )
        capacity = spec.capacity or EFFECTIVE_BOTTLENECK
        # Mutable holder: fault boundary events rebind the bottleneck's
        # effective capacity mid-run (closures below read cap[0]).
        cap = [capacity]
        streams = RandomStreams(spec.seed)
        sim = Simulator()
        load = StepFunction(0.0, name=f"load:{BOTTLENECK_LINK}")
        jobs = self._build_jobs(
            spec,
            streams,
            {job.job_id: (BOTTLENECK_LINK,) for job in spec.jobs},
        )

        active: List[_EngineJob] = []
        rates: Dict[int, float] = {}
        finish_events: Dict[int, object] = {}
        last_update = [0.0]

        def advance_progress() -> None:
            dt = sim.now - last_update[0]
            if dt > 0:
                for job in active:
                    job.run.lifecycle.credit(rates.get(id(job), 0.0) * dt)
            last_update[0] = sim.now

        def reallocate() -> None:
            advance_progress()
            total_weight = sum(job.weight for job in active)
            total_rate = 0.0
            for job in active:
                rate = (
                    cap[0] * job.weight / total_weight
                    if total_weight > 0
                    else 0.0
                )
                rates[id(job)] = rate
                job.run.rate_trace.set(sim.now, rate)
                total_rate += rate
                event = finish_events.pop(id(job), None)
                if event is not None:
                    sim.cancel(event)
                if rate > 0:
                    remaining = job.run.lifecycle.remaining_bytes
                    finish_events[id(job)] = sim.schedule(
                        max(remaining, 0.0) / rate, finish_comm, job
                    )
            load.set(sim.now, total_rate)

        def begin_iteration(job: _EngineJob) -> None:
            compute_time = job.run.lifecycle.begin_iteration(sim.now)
            sim.schedule(compute_time, begin_comm, job)

        def begin_comm(job: _EngineJob) -> None:
            job.run.lifecycle.begin_comm(sim.now)
            job.active = True
            active.append(job)
            reallocate()

        def finish_comm(job: _EngineJob) -> None:
            finish_events.pop(id(job), None)
            advance_progress()
            run = job.run
            active.remove(job)
            job.active = False
            rates.pop(id(job), None)
            run.rate_trace.set(sim.now, 0.0)
            if run.lifecycle.has_more_segments:
                # Layer-wise allreduce: next sub-phase's compute gap.
                compute_time = run.lifecycle.advance_segment(sim.now)
                sim.schedule(compute_time, begin_comm, job)
            else:
                run.lifecycle.close_iteration(sim.now)
                if not run.done:
                    begin_iteration(job)
            reallocate()

        def apply_fault(value: float) -> None:
            cap[0] = value
            reallocate()

        if spec.faults is not None:
            from ..telemetry import session as _telemetry_session

            emit_fault_events(
                _telemetry_session.resolve(None), spec.faults
            )
            for event in spec.faults.capacity_events(BOTTLENECK_LINK):
                if isinstance(event, RateChange):
                    faulted = capacity * event.factor
                else:
                    # LinkFailure / PfcStorm both degrade to a dead span
                    # in this tier (no PFC model to storm).
                    faulted = 0.0
                # priority=-1: the capacity flips before any same-time
                # job event, mirroring the phase and fluid tiers.
                sim.schedule_at(
                    event.start, apply_fault, faulted, priority=-1
                )
                sim.schedule_at(
                    event.end, apply_fault, capacity, priority=-1
                )

        for job in jobs:
            sim.schedule_at(job.run.start_offset, begin_iteration, job)
        end_time = sim.run(until=spec.until)

        result = SimulationResult(
            jobs={job.run.job_id: job.run for job in jobs},
            link_loads={BOTTLENECK_LINK: load},
            duration=end_time,
        )
        return RunResult(
            spec_hash=safe_content_hash(spec),
            backend=self.name,
            label=spec.label,
            phase=result,
        )

    def _execute_fabric(self, spec: RunSpec) -> RunResult:
        """Multi-link tier: ECMP-routed flows over ``spec.topology``.

        ``options["placements"]`` binds each job to its
        ``(src_host, dst_host)`` endpoints; the route is resolved once
        by deterministic ECMP (salted with the spec seed) and every
        membership change re-runs the weighted max-min allocator over
        the communicating flows. Fault capacity events rescale the
        affected links for the duration of their window — link
        capacities are restored afterwards even if the run raises.
        """
        from ..net.flows import Flow
        from ..net.fluid import FluidAllocator
        from ..net.routing import EcmpRouter

        options = spec.options_dict()
        placements = options.get("placements")
        if not placements:
            raise ConfigError(
                "engine backend with a topology needs "
                "options['placements'] = "
                "((job_id, src_host, dst_host), ...)"
            )
        endpoints = {
            str(job_id): (str(src), str(dst))
            for job_id, src, dst in placements
        }
        missing = sorted(
            job.job_id for job in spec.jobs
            if job.job_id not in endpoints
        )
        if missing:
            raise ConfigError(
                f"placements are missing job(s) {missing}"
            )
        router = EcmpRouter(spec.topology, salt=spec.seed)
        routes = {}
        for job_spec in spec.jobs:
            src, dst = endpoints[job_spec.job_id]
            routes[job_spec.job_id] = tuple(
                router.route(src, dst, job_spec.job_id)
            )
        fabric_links = {}
        for job_spec in spec.jobs:
            for link in routes[job_spec.job_id]:
                fabric_links.setdefault(link.name, link)

        streams = RandomStreams(spec.seed)
        sim = Simulator()
        loads = {
            name: StepFunction(0.0, name=f"load:{name}")
            for name in fabric_links
        }
        jobs = self._build_jobs(
            spec,
            streams,
            {
                job_id: tuple(link.name for link in links)
                for job_id, links in routes.items()
            },
        )
        allocator = FluidAllocator()

        active: List[_EngineJob] = []
        rates: Dict[int, float] = {}
        finish_events: Dict[int, object] = {}
        last_update = [0.0]

        def advance_progress() -> None:
            dt = sim.now - last_update[0]
            if dt > 0:
                for job in active:
                    job.run.lifecycle.credit(
                        rates.get(id(job), 0.0) * dt
                    )
            last_update[0] = sim.now

        def reallocate() -> None:
            advance_progress()
            flows = [
                Flow(
                    flow_id=job.run.job_id,
                    src=endpoints[job.run.job_id][0],
                    dst=endpoints[job.run.job_id][1],
                    links=list(routes[job.run.job_id]),
                    weight=job.weight,
                    job_id=job.run.job_id,
                )
                for job in active
            ]
            allocation = allocator.allocate(flows)
            for job, flow in zip(active, flows):
                rate = allocation.rate_of(flow)
                rates[id(job)] = rate
                job.run.rate_trace.set(sim.now, rate)
                event = finish_events.pop(id(job), None)
                if event is not None:
                    sim.cancel(event)
                if rate > 0:
                    remaining = job.run.lifecycle.remaining_bytes
                    finish_events[id(job)] = sim.schedule(
                        max(remaining, 0.0) / rate, finish_comm, job
                    )
            for name, link in fabric_links.items():
                loads[name].set(
                    sim.now, allocation.link_loads.get(link, 0.0)
                )

        def begin_iteration(job: _EngineJob) -> None:
            compute_time = job.run.lifecycle.begin_iteration(sim.now)
            sim.schedule(compute_time, begin_comm, job)

        def begin_comm(job: _EngineJob) -> None:
            job.run.lifecycle.begin_comm(sim.now)
            job.active = True
            active.append(job)
            reallocate()

        def finish_comm(job: _EngineJob) -> None:
            finish_events.pop(id(job), None)
            advance_progress()
            run = job.run
            active.remove(job)
            job.active = False
            rates.pop(id(job), None)
            run.rate_trace.set(sim.now, 0.0)
            if run.lifecycle.has_more_segments:
                compute_time = run.lifecycle.advance_segment(sim.now)
                sim.schedule(compute_time, begin_comm, job)
            else:
                run.lifecycle.close_iteration(sim.now)
                if not run.done:
                    begin_iteration(job)
            reallocate()

        def apply_fault(link, value: float) -> None:
            link.capacity = value
            reallocate()

        base_caps: Dict[str, float] = {}
        if spec.faults is not None:
            from ..telemetry import session as _telemetry_session

            emit_fault_events(
                _telemetry_session.resolve(None), spec.faults
            )
            for name in spec.faults.link_names():
                # Unknown names raise TopologyError up front, before
                # any event fires.
                spec.topology.link_by_name(name)
            for event in spec.faults.capacity_events():
                link = spec.topology.link_by_name(event.link)
                base_caps.setdefault(link.name, link.capacity)
                if isinstance(event, RateChange):
                    faulted = base_caps[link.name] * event.factor
                else:
                    # LinkFailure / PfcStorm both degrade to a dead
                    # span in this tier (no PFC model to storm).
                    faulted = 0.0
                sim.schedule_at(
                    event.start, apply_fault, link, faulted, priority=-1
                )
                sim.schedule_at(
                    event.end, apply_fault, link,
                    base_caps[link.name], priority=-1,
                )

        for job in jobs:
            sim.schedule_at(job.run.start_offset, begin_iteration, job)
        try:
            end_time = sim.run(until=spec.until)
        finally:
            for name, capacity in base_caps.items():
                spec.topology.link_by_name(name).capacity = capacity

        result = SimulationResult(
            jobs={job.run.job_id: job.run for job in jobs},
            link_loads=loads,
            duration=end_time,
        )
        return RunResult(
            spec_hash=safe_content_hash(spec),
            backend=self.name,
            label=spec.label,
            phase=result,
        )


# ---------------------------------------------------------------------------
# cluster
# ---------------------------------------------------------------------------

class ClusterBackend:
    """Adapter for the scheduler's cluster simulation.

    The spec is fully declarative: ``topology`` carries the fabric,
    ``options["placements"]`` the already-decided ``(JobSpec, hosts)``
    bindings (placement *decisions* stay in the driver — they are
    scheduling logic, not simulation). Results come back as plain data
    so they cache cleanly.
    """

    name = "cluster"

    def execute(self, spec: RunSpec) -> RunResult:
        from .. import io
        from ..scheduler.cluster import ClusterState
        from ..scheduler.simulation import ClusterSimulation

        if spec.topology is None:
            raise ConfigError("cluster backend needs an explicit topology")
        if spec.policy is None:
            raise ConfigError("cluster backend needs a share policy")
        options = spec.options_dict()
        placements = options.get("placements")
        if not placements:
            raise ConfigError("cluster backend needs placements")
        cluster = ClusterState(
            spec.topology,
            gpus_per_host=int(options.get("gpus_per_host", 4)),
            router=Router(spec.topology),
        )
        for job_spec, hosts in placements:
            cluster.place(job_spec, list(hosts))
        simulation = ClusterSimulation(
            cluster,
            reference_capacity=spec.capacity or gbps(42),
            seed=spec.seed,
            flow_model=options.get("flow_model", "aggregate"),
        )
        report = simulation.run(
            spec.policy,
            n_iterations=spec.n_iterations,
            warmup_iterations=int(options.get("warmup_iterations", 10)),
            until=spec.until,
            stagger=float(options.get("stagger", 0.005)),
            gates=spec.gates_dict() or None,
            faults=spec.faults,
        )
        return RunResult(
            spec_hash=safe_content_hash(spec),
            backend=self.name,
            label=spec.label,
            data={
                "policy_name": report.policy_name,
                "iteration_ms": dict(report.iteration_ms),
                "solo_ms": dict(report.solo_ms),
                "slowdown": dict(report.slowdown),
                "timelines": {
                    job_id: io.timeline_to_dict(timeline)
                    for job_id, timeline in report.timelines.items()
                },
            },
        )


# ---------------------------------------------------------------------------
# service
# ---------------------------------------------------------------------------

class ServiceBackend:
    """Adapter for the online cluster service.

    The spec describes an arrival process (Poisson knobs or explicit
    trace rows riding ``options``), a placement policy by name and a
    topology recipe; :func:`repro.scheduler.service.run_service_spec`
    builds the cluster, streams the arrivals through a
    :class:`~repro.scheduler.service.ClusterService` and returns plain
    counts/rates/records — wall-clock placement latency goes only to
    telemetry, never into the (cacheable) result data.
    """

    name = "service"

    def execute(self, spec: RunSpec) -> RunResult:
        from ..scheduler.service import run_service_spec

        return run_service_spec(spec)


register(PhaseBackend.name, PhaseBackend(), replace=True)
register(FluidBackend.name, FluidBackend(), replace=True)
register(EngineBackend.name, EngineBackend(), replace=True)
register(ClusterBackend.name, ClusterBackend(), replace=True)
register(ServiceBackend.name, ServiceBackend(), replace=True)
