"""Shared float-comparison tolerances (the FP001 contract).

Exact ``==`` / ``!=`` on floats flips under accumulated rounding, so the
geometry, network and congestion-control layers compare through one
shared helper instead of scattering ad-hoc epsilons. The linter
(:mod:`repro.lint`, rule FP001) enforces this in ``core/``, ``net/``
and ``cc/``.

The defaults suit the library's scales: simulation times are seconds
with microsecond-ish structure and rates are bytes/second up to ~1e10,
so a relative tolerance dominates for large magnitudes while ``ABS_TOL``
absorbs exact-zero comparisons.
"""

from __future__ import annotations

import math

#: Shared relative tolerance for float comparisons.
REL_TOL = 1e-9

#: Shared absolute tolerance (floors comparisons involving 0.0).
ABS_TOL = 1e-12


def isclose(
    a: float,
    b: float,
    rel_tol: float = REL_TOL,
    abs_tol: float = ABS_TOL,
) -> bool:
    """:func:`math.isclose` with the library-wide default tolerances."""
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
