"""Plain-text rendering of tables and plots.

Benchmarks print the same rows and series the paper's tables and figures
report; these helpers keep that output aligned and readable in a terminal
without any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

#: Glyphs for vertical-resolution bar plots.
_BLOCKS = " ▁▂▃▄▅▆▇█"


def format_ms(seconds: float, digits: int = 1) -> str:
    """Render a duration in milliseconds, e.g. ``'297.0 ms'``."""
    return f"{seconds * 1e3:.{digits}f} ms"


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def ascii_sparkline(values: Sequence[float], maximum: float = 0.0) -> str:
    """One-line block-glyph sparkline of non-negative values."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return ""
    top = maximum if maximum > 0 else max(float(data.max()), 1e-12)
    scaled = np.clip(data / top, 0.0, 1.0)
    indices = np.round(scaled * (len(_BLOCKS) - 1)).astype(int)
    return "".join(_BLOCKS[i] for i in indices)


def ascii_timeline(
    times: Sequence[float],
    values: Sequence[float],
    label: str = "",
    width: int = 80,
    maximum: float = 1.0,
) -> str:
    """A labelled sparkline resampled to ``width`` columns.

    Used for the Figure 2 link-utilization series: one row per scenario,
    utilization rendered as block heights over time.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return f"{label}: (no data)"
    if data.size > width:
        # Average into width buckets to preserve narrow phases.
        edges = np.linspace(0, data.size, width + 1).astype(int)
        data = np.asarray(
            [
                data[lo:hi].mean() if hi > lo else data[min(lo, data.size - 1)]
                for lo, hi in zip(edges[:-1], edges[1:])
            ]
        )
    spark = ascii_sparkline(data, maximum=maximum)
    t0, t1 = float(times[0]), float(times[-1])
    return f"{label:16s} |{spark}| {t0:.2f}s..{t1:.2f}s"


def ascii_cdf(
    values: Sequence[float],
    label: str = "",
    width: int = 60,
    x_max: float = 0.0,
) -> str:
    """Render a CDF as a row of quantile markers.

    Prints the 10th..90th percentiles so two scenarios can be compared
    line-by-line, mirroring how Figure 1d is read.
    """
    data = np.sort(np.asarray(list(values), dtype=float))
    if data.size == 0:
        return f"{label}: (no data)"
    quantiles = [10, 25, 50, 75, 90]
    parts = [
        f"p{q}={np.percentile(data, q) * 1e3:.1f}ms" for q in quantiles
    ]
    return f"{label:16s} " + "  ".join(parts)
