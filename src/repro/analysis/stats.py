"""Iteration-time statistics.

Wraps the summaries every experiment reports: mean/median/percentiles of
iteration times, and the fair-over-unfair speedup ratio Table 1 tabulates
(values above 1 mean unfairness helped).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import SimulationError


@dataclass(frozen=True)
class IterationStats:
    """Summary statistics of a sequence of iteration times (seconds)."""

    count: int
    mean: float
    median: float
    std: float
    p5: float
    p95: float
    minimum: float
    maximum: float

    @property
    def mean_ms(self) -> float:
        """Mean in milliseconds (for reporting)."""
        return self.mean * 1e3

    @property
    def median_ms(self) -> float:
        """Median in milliseconds (for reporting)."""
        return self.median * 1e3


def summarize(times: Sequence[float], skip: int = 0) -> IterationStats:
    """Summarize iteration times, optionally skipping warm-up iterations.

    Raises:
        SimulationError: if no samples remain after ``skip``.
    """
    values = np.asarray(list(times), dtype=float)[skip:]
    if values.size == 0:
        raise SimulationError("no iteration samples to summarize")
    return IterationStats(
        count=int(values.size),
        mean=float(values.mean()),
        median=float(np.median(values)),
        std=float(values.std()),
        p5=float(np.percentile(values, 5)),
        p95=float(np.percentile(values, 95)),
        minimum=float(values.min()),
        maximum=float(values.max()),
    )


def speedup(baseline: float, improved: float) -> float:
    """``baseline / improved`` — above 1 means ``improved`` is faster.

    Table 1's "unfairness speed-up" column is
    ``speedup(fair_time, unfair_time)``.
    """
    if improved <= 0:
        raise SimulationError(f"improved time must be > 0, got {improved}")
    return baseline / improved
