"""Convergence detection for the sliding effect.

Figure 2 shows the sliding effect completing "by the fourth iteration".
These helpers quantify that: given a job's iteration times, find the
iteration after which they stabilize, and measure how far the stable
value sits from a reference (solo or fair) time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import SimulationError


@dataclass(frozen=True)
class Convergence:
    """Outcome of convergence detection on a series.

    Attributes:
        converged: Whether a stable tail was found.
        iteration: First iteration index inside the stable tail (None if
            not converged).
        steady_value: Mean of the stable tail (None if not converged).
    """

    converged: bool
    iteration: Optional[int]
    steady_value: Optional[float]


def detect_convergence(
    values: Sequence[float],
    tolerance: float = 0.02,
    window: int = 4,
) -> Convergence:
    """Find the earliest point after which ``values`` stays within a band.

    The series converges at index ``i`` when every later value lies
    within ``tolerance`` (relative) of the tail mean and at least
    ``window`` values remain.

    Raises:
        SimulationError: on an empty series or bad parameters.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise SimulationError("empty series")
    if tolerance <= 0 or window < 1:
        raise SimulationError("need tolerance > 0 and window >= 1")
    for start in range(0, data.size - window + 1):
        tail = data[start:]
        center = tail.mean()
        if center == 0:
            continue
        if np.abs(tail - center).max() <= tolerance * abs(center):
            return Convergence(
                converged=True, iteration=start, steady_value=float(center)
            )
    return Convergence(converged=False, iteration=None, steady_value=None)


def iterations_to_reach(
    values: Sequence[float],
    target: float,
    tolerance: float = 0.02,
) -> Optional[int]:
    """First index whose value is within ``tolerance`` of ``target`` and
    stays there — how long the slide takes to deliver solo-like times."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise SimulationError("empty series")
    if target <= 0:
        raise SimulationError("target must be > 0")
    near = np.abs(data - target) <= tolerance * target
    for index in range(data.size):
        if near[index:].all():
            return index
    return None
