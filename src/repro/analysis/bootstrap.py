"""Bootstrap confidence intervals for iteration-time statistics.

Figure 1d's headline is a *median* speedup; a single median from a finite
run deserves an uncertainty estimate. These helpers bootstrap medians and
median-ratios (fair over unfair) with a seeded resampler, so benchmark
reports can state e.g. "median speedup 1.26× (95% CI 1.24–1.28)".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import SimulationError


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a two-sided confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __str__(self) -> str:
        return (
            f"{self.estimate:.3f} "
            f"[{self.low:.3f}, {self.high:.3f}] "
            f"@{self.confidence:.0%}"
        )

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high


def _validate(samples: Sequence[float], n_resamples: int,
              confidence: float) -> np.ndarray:
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise SimulationError("no samples to bootstrap")
    if n_resamples < 10:
        raise SimulationError("n_resamples must be >= 10")
    if not 0.5 < confidence < 1.0:
        raise SimulationError("confidence must be in (0.5, 1)")
    return data


def bootstrap_median(
    samples: Sequence[float],
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI for the median of ``samples``."""
    data = _validate(samples, n_resamples, confidence)
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, data.size, size=(n_resamples, data.size))
    medians = np.median(data[indices], axis=1)
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        estimate=float(np.median(data)),
        low=float(np.quantile(medians, alpha)),
        high=float(np.quantile(medians, 1.0 - alpha)),
        confidence=confidence,
    )


def bootstrap_median_ratio(
    numerator: Sequence[float],
    denominator: Sequence[float],
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> ConfidenceInterval:
    """CI for ``median(numerator) / median(denominator)``.

    The two sample sets are resampled independently (they come from
    independent runs — fair and unfair scenarios).
    """
    num = _validate(numerator, n_resamples, confidence)
    den = _validate(denominator, n_resamples, confidence)
    rng = np.random.default_rng(seed)
    num_medians = np.median(
        num[rng.integers(0, num.size, size=(n_resamples, num.size))],
        axis=1,
    )
    den_medians = np.median(
        den[rng.integers(0, den.size, size=(n_resamples, den.size))],
        axis=1,
    )
    if (den_medians <= 0).any() or np.median(den) <= 0:
        raise SimulationError("denominator medians must be positive")
    ratios = num_medians / den_medians
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        estimate=float(np.median(num) / np.median(den)),
        low=float(np.quantile(ratios, alpha)),
        high=float(np.quantile(ratios, 1.0 - alpha)),
        confidence=confidence,
    )
