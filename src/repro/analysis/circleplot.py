"""ASCII rendering of the geometric abstraction.

Draws the paper's circle figures in a terminal: each job occupies one
concentric ring; its communication arcs are filled with the job's symbol
and compute spans are left faint. Time runs counterclockwise from the
positive x-axis, as in Figure 3b. Useful in examples and reports to *see*
why a rotation separates the arcs.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.circle import JobCircle
from ..core.unified import UnifiedCircle
from ..errors import GeometryError

#: Symbols assigned to jobs, ring by ring.
_SYMBOLS = "#*@%&+o="


def render_unified(
    circles: Sequence[JobCircle],
    rotations: Optional[Mapping[str, int]] = None,
    size: int = 21,
) -> str:
    """Render jobs tiled on the unified circle as concentric rings.

    Args:
        circles: Jobs to draw (outermost ring first).
        rotations: Optional per-job rotations (the solver's output).
        size: Grid height in characters (width is doubled for aspect).

    Returns:
        A multi-line string: the rings plus a legend line per job.
    """
    if not circles:
        raise GeometryError("nothing to render")
    if size < 7:
        raise GeometryError("size must be >= 7")
    unified = UnifiedCircle(circles)
    tiled = unified.tiled(dict(rotations or {}))
    perimeter = unified.perimeter

    n = len(circles)
    center = (size - 1) / 2
    outer = center
    ring_width = outer / (n + 1)

    grid: List[List[str]] = [[" "] * (2 * size) for _ in range(size)]
    for row in range(size):
        for col in range(2 * size):
            x = (col / 2) - center
            y = center - row
            radius = math.hypot(x, y)
            ring = None
            for index in range(n):
                r_out = outer - index * ring_width
                r_in = r_out - ring_width * 0.85
                if r_in <= radius <= r_out:
                    ring = index
                    break
            if ring is None:
                continue
            angle = math.atan2(y, x) % (2 * math.pi)
            tick = int(angle / (2 * math.pi) * perimeter) % perimeter
            job = circles[ring]
            if tiled[job.job_id].contains(tick):
                grid[row][col] = _SYMBOLS[ring % len(_SYMBOLS)]
            else:
                grid[row][col] = "."
    lines = ["".join(row).rstrip() for row in grid]
    legend = [
        f"  {_SYMBOLS[i % len(_SYMBOLS)]} = {circle.job_id} "
        f"(period {circle.perimeter}, comm {circle.comm_ticks}, "
        f"rotation {dict(rotations or {}).get(circle.job_id, 0)})"
        for i, circle in enumerate(circles)
    ]
    header = f"unified perimeter = {perimeter} ticks"
    return "\n".join([header] + lines + legend)


def render_coverage_band(
    circles: Sequence[JobCircle],
    rotations: Optional[Mapping[str, int]] = None,
    width: int = 72,
    capacity: int = 1,
) -> str:
    """Render the unified circle unrolled as a one-line coverage band.

    Each column is a slice of the circle: ``' '`` idle, digits show how
    many jobs communicate, ``!`` marks slices above ``capacity`` — a
    compatible rotation renders with no ``!``.
    """
    if width < 8:
        raise GeometryError("width must be >= 8")
    unified = UnifiedCircle(circles)
    segments = unified.coverage(dict(rotations or {}))
    perimeter = unified.perimeter
    band = []
    for column in range(width):
        lo = column * perimeter / width
        hi = (column + 1) * perimeter / width
        worst = 0
        for start, end, count in segments:
            if start < hi and end > lo:
                worst = max(worst, count)
        if worst == 0:
            band.append(" ")
        elif worst <= capacity:
            band.append(str(worst) if worst < 10 else "+")
        else:
            band.append("!")
    return "|" + "".join(band) + "|"
