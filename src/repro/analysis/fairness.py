"""Fairness metrics over simulation outputs.

The paper's provocation is that fairness is the wrong objective — these
metrics make the trade explicit by quantifying *how unfair* each policy's
bandwidth allocation actually was and what that bought:

* :func:`jain_index` — Jain's fairness index over per-job mean rates
  during contention (1 = perfectly fair).
* :func:`contention_shares` — each job's share of the bottleneck during
  the periods when two or more jobs were communicating.
* :func:`efficiency` — total useful bytes over link capacity × time,
  the quantity unfairness actually improves for compatible jobs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..net.phasesim import SimulationResult


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``, in (0, 1]."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise SimulationError("jain_index of an empty sequence")
    if (data < 0).any():
        raise SimulationError("rates must be non-negative")
    total_sq = float((data ** 2).sum())
    if total_sq == 0:
        return 1.0
    return float(data.sum() ** 2 / (data.size * total_sq))


def _contention_windows(
    result: SimulationResult,
    job_ids: Sequence[str],
) -> List[Tuple[float, float]]:
    """Time windows during which two or more jobs communicate."""
    events: List[Tuple[float, int]] = []
    for job_id in job_ids:
        for sample in result.timeline(job_id):
            events.append((sample.comm_start, 1))
            events.append((sample.end, -1))
    events.sort()
    windows: List[Tuple[float, float]] = []
    depth = 0
    window_start = 0.0
    for time, delta in events:
        was_contended = depth >= 2
        depth += delta
        if not was_contended and depth >= 2:
            window_start = time
        elif was_contended and depth < 2:
            windows.append((window_start, time))
    return windows


def contention_shares(
    result: SimulationResult,
    job_ids: Sequence[str],
) -> Dict[str, float]:
    """Each job's mean rate over the contended periods, bytes/s.

    Returns zeros for every job when the jobs never overlapped — which
    is itself the signature of a perfectly interleaved schedule.
    """
    windows = _contention_windows(result, job_ids)
    total_time = sum(end - start for start, end in windows)
    shares: Dict[str, float] = {}
    for job_id in job_ids:
        trace = result.jobs[job_id].rate_trace
        moved = sum(trace.integrate(start, end) for start, end in windows)
        shares[job_id] = moved / total_time if total_time > 0 else 0.0
    return shares


def contention_fraction(
    result: SimulationResult,
    job_ids: Sequence[str],
) -> float:
    """Fraction of the run during which two or more jobs communicated."""
    windows = _contention_windows(result, job_ids)
    if result.duration <= 0:
        raise SimulationError("empty simulation")
    return sum(end - start for start, end in windows) / result.duration


def efficiency(
    result: SimulationResult,
    link_name: str,
    capacity: float,
    start: float = 0.0,
    end: float | None = None,
) -> float:
    """Bottleneck utilization: bytes carried over capacity x time."""
    if capacity <= 0:
        raise SimulationError("capacity must be > 0")
    if end is None:
        end = result.duration
    if end <= start:
        raise SimulationError(f"bad window [{start}, {end}]")
    load = result.link_loads[link_name]
    return load.integrate(start, end) / (capacity * (end - start))
