"""Measurement and reporting helpers for experiments and benchmarks.

* :mod:`repro.analysis.stats` — iteration-time summaries and speedups.
* :mod:`repro.analysis.cdf` — empirical CDFs (Figure 1d).
* :mod:`repro.analysis.timeseries` — sampling piecewise-constant signals
  (Figure 2's link-utilization plots).
* :mod:`repro.analysis.report` — ASCII tables and plots so every benchmark
  prints the same rows/series the paper reports.
"""

from .stats import IterationStats, summarize, speedup
from .cdf import empirical_cdf, cdf_at, median_of
from .timeseries import sample_step, smooth, utilization_series
from .report import ascii_table, ascii_cdf, ascii_timeline, format_ms
from .convergence import Convergence, detect_convergence, iterations_to_reach
from .circleplot import render_unified, render_coverage_band
from .bootstrap import (
    ConfidenceInterval,
    bootstrap_median,
    bootstrap_median_ratio,
)
from .fairness import (
    jain_index,
    contention_shares,
    contention_fraction,
    efficiency,
)

__all__ = [
    "IterationStats",
    "summarize",
    "speedup",
    "empirical_cdf",
    "cdf_at",
    "median_of",
    "sample_step",
    "smooth",
    "utilization_series",
    "ascii_table",
    "ascii_cdf",
    "ascii_timeline",
    "format_ms",
    "Convergence",
    "detect_convergence",
    "iterations_to_reach",
    "render_unified",
    "render_coverage_band",
    "ConfidenceInterval",
    "bootstrap_median",
    "bootstrap_median_ratio",
    "jain_index",
    "contention_shares",
    "contention_fraction",
    "efficiency",
]
