"""Sampling and smoothing piecewise-constant signals.

Figure 2 plots link utilization over back-to-back iterations ("we smooth
out the plots to help with the visualization"); these helpers turn the
simulator's exact :class:`~repro.sim.trace.StepFunction` link loads into
sampled, optionally smoothed series.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import SimulationError
from ..sim.trace import StepFunction


def sample_step(
    step: StepFunction,
    start: float,
    end: float,
    n_samples: int = 500,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample a step function on an even grid over ``[start, end]``.

    Each sample is the *window average* (exact integral over the sample
    interval divided by its width), not a point sample, so narrow phases
    are never missed.
    """
    if end <= start:
        raise SimulationError(f"bad window [{start}, {end}]")
    if n_samples < 1:
        raise SimulationError("n_samples must be >= 1")
    edges = np.linspace(start, end, n_samples + 1)
    values = np.asarray(
        [
            step.integrate(lo, hi) / (hi - lo)
            for lo, hi in zip(edges[:-1], edges[1:])
        ]
    )
    centers = (edges[:-1] + edges[1:]) / 2
    return centers, values


def smooth(values: np.ndarray, window: int = 9) -> np.ndarray:
    """Centered moving average (the paper's visual smoothing)."""
    if window < 1:
        raise SimulationError("window must be >= 1")
    if window == 1 or values.size == 0:
        return np.asarray(values, dtype=float)
    kernel = np.ones(window) / window
    padded = np.pad(values, window // 2, mode="edge")
    out = np.convolve(padded, kernel, mode="valid")
    return out[: values.size]


def utilization_series(
    load: StepFunction,
    capacity: float,
    start: float,
    end: float,
    n_samples: int = 500,
    smooth_window: int = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Link utilization in [0, 1] over a window (Figure 2's y-axis)."""
    if capacity <= 0:
        raise SimulationError("capacity must be > 0")
    times, values = sample_step(load, start, end, n_samples)
    utilization = values / capacity
    if smooth_window > 1:
        utilization = smooth(utilization, smooth_window)
    return times, utilization
