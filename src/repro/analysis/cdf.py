"""Empirical CDFs — the Figure 1d presentation.

The paper plots the CDF of per-iteration times for both jobs under fair
and unfair sharing and reads the median speedup (1.23x) off the curves.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import SimulationError


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted values, cumulative probabilities)``.

    Probabilities use the ``i/n`` convention so the last point is 1.0.
    """
    data = np.sort(np.asarray(list(values), dtype=float))
    if data.size == 0:
        raise SimulationError("empirical_cdf of an empty sequence")
    probs = np.arange(1, data.size + 1) / data.size
    return data, probs


def cdf_at(values: Sequence[float], x: float) -> float:
    """Fraction of samples less than or equal to ``x``."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise SimulationError("cdf_at of an empty sequence")
    return float((data <= x).mean())


def median_of(values: Sequence[float]) -> float:
    """Median of the samples (the statistic Figure 1d compares)."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise SimulationError("median_of an empty sequence")
    return float(np.median(data))
