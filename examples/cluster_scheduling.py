#!/usr/bin/env python
"""Compatibility-aware scheduling on a multi-rack cluster.

Walks through the paper's §4 placement argument end to end: a fragmented
leaf-spine cluster, an arriving job that must spill across racks, three
placement policies, and the resulting slowdowns under the adaptive unfair
congestion control. Then replays a dynamic Poisson arrival stream and
audits how often each policy keeps every shared link fully compatible.

Run:
    python examples/cluster_scheduling.py
"""

from repro import (
    CompatibilityChecker,
    ClusterState,
    CompatibilityAwarePlacement,
    ConsolidatedPlacement,
    RandomPlacement,
    Topology,
    WorkloadGenerator,
    ascii_table,
    gbps,
)
from repro.experiments import scheduler_exp
from repro.scheduler.events import arrival_schedule, replay

CAPACITY = gbps(42)


def static_scenario() -> None:
    """The newcomer-placement scenario from the experiments package."""
    outcomes = scheduler_exp.run_policies(n_iterations=50)
    print(scheduler_exp.report(outcomes))
    print()


def dynamic_replay() -> None:
    """Poisson arrivals against each policy: compatibility audit."""
    rows = []
    for policy in (
        RandomPlacement(seed=3),
        ConsolidatedPlacement(),
        CompatibilityAwarePlacement(),
    ):
        topology = Topology.leaf_spine(
            n_racks=4, hosts_per_rack=2, n_spines=1,
            host_capacity=CAPACITY, uplink_capacity=CAPACITY,
        )
        cluster = ClusterState(topology, gpus_per_host=4)
        generator = WorkloadGenerator(seed=11, capacity=CAPACITY)
        arrivals = arrival_schedule(
            generator, count=20, mean_interarrival_s=120,
            mean_lifetime_s=600,
        )
        stats = replay(
            cluster, policy, arrivals,
            checker=CompatibilityChecker(capacity=CAPACITY),
        )
        rows.append(
            (
                policy.name,
                stats.placed,
                stats.rejected,
                f"{stats.compatibility_rate:.0%}",
            )
        )
    print(ascii_table(
        ["policy", "placed", "rejected", "all-links-compatible rate"],
        rows,
        title="Dynamic arrivals: how often placements stay compatible",
    ))


def main() -> None:
    static_scenario()
    dynamic_replay()


if __name__ == "__main__":
    main()
