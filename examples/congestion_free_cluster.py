#!/usr/bin/env python
"""The whole paper in one controller call.

§4's end state: a cluster whose operator (1) places compatible jobs on
links and (2) deploys a mechanism that creates the unfairness side
effect. :class:`~repro.mechanisms.controller.CongestionFreeController`
automates step (2): audit the placed cluster, solve the cluster-level
rotation problem, hand out flow-scheduling gates when the placement is
fully compatible, and fall back to the always-safe adaptive policy when
it is not.

Run:
    python examples/congestion_free_cluster.py
"""

from repro import (
    CompatibilityChecker,
    ClusterState,
    ClusterSimulation,
    JobSpec,
    Topology,
    ascii_table,
    gbps,
    ms,
)
from repro.mechanisms.controller import CongestionFreeController, Mechanism

CAPACITY = gbps(42)


def build_cluster(compatible: bool) -> ClusterState:
    """Two cross-rack jobs sharing an uplink; compatible or not."""
    topology = Topology.leaf_spine(
        n_racks=2, hosts_per_rack=2, n_spines=1,
        host_capacity=CAPACITY, uplink_capacity=CAPACITY,
    )
    cluster = ClusterState(topology, gpus_per_host=4)
    if compatible:
        specs = [
            JobSpec("wrn", ms(210), ms(90) * CAPACITY, n_workers=2),
            JobSpec("vgg16", ms(210), ms(90) * CAPACITY, n_workers=2),
        ]
    else:
        specs = [
            JobSpec("vgg19-a", ms(100), ms(110) * CAPACITY, n_workers=2),
            JobSpec("vgg19-b", ms(100), ms(110) * CAPACITY, n_workers=2),
        ]
    cluster.place(specs[0], ["h0_0", "h1_0"])
    cluster.place(specs[1], ["h0_1", "h1_1"])
    return cluster


def main() -> None:
    controller = CongestionFreeController(
        checker=CompatibilityChecker(capacity=CAPACITY)
    )
    rows = []
    for label, compatible in (("compatible pair", True),
                              ("incompatible pair", False)):
        cluster = build_cluster(compatible)
        plan = controller.plan(
            cluster, mechanism=Mechanism.FLOW_SCHEDULING
        )
        report = ClusterSimulation(
            cluster, reference_capacity=CAPACITY
        ).run(plan.policy, n_iterations=40, gates=plan.gates, stagger=0.0)
        rows.append(
            (
                label,
                plan.mechanism.value,
                "yes" if plan.fully_congestion_free else "no",
                f"{report.mean_slowdown:.3f}",
                f"{report.max_slowdown:.3f}",
            )
        )
    print(ascii_table(
        ["cluster", "deployed mechanism", "congestion-free",
         "mean slowdown", "max slowdown"],
        rows,
        title="CongestionFreeController: audit, solve, deploy",
    ))
    print()
    print("The compatible pair gets precise flow scheduling and runs at")
    print("dedicated-network speed; the incompatible pair gets the safe")
    print("adaptive fallback, which never does worse than fair sharing.")


if __name__ == "__main__":
    main()
