#!/usr/bin/env python
"""Precise flow scheduling from rotation angles (§4 iii).

Takes a compatible job group, solves for rotations, converts them to
periodic communication windows, and runs the jobs with admission gates
that release each communication phase only inside its window — TDMA for
allreduce. No unfairness anywhere in the transport, yet every job runs at
dedicated-network speed.

Run:
    python examples/flow_scheduling_demo.py
"""

from repro import (
    CompatibilityChecker,
    FlowSchedule,
    ascii_table,
    gbps,
)
from repro.cc.fair import FairSharing
from repro.experiments.common import run_jobs
from repro.workloads.profiles import EFFECTIVE_BOTTLENECK, table1_groups


def main() -> None:
    group = table1_groups()[4]  # Table 1 group 5: a compatible triple
    specs = group.specs
    checker = CompatibilityChecker()

    verdict = checker.check(specs)
    print(f"group 5 compatible: {verdict.compatible} "
          f"(unified period {verdict.unified_perimeter} ms)")
    for job_id, ticks in verdict.rotations.items():
        print(f"  {job_id}: time-shift {ticks} ms")
    print()

    schedule = FlowSchedule.from_compatibility(
        checker.circles(specs), verdict, checker.ticks_per_second
    )
    for job_id, windows in schedule.windows.items():
        spans = ", ".join(
            f"[{w.start}, {w.start + w.length}) ms" for w in windows
        )
        print(f"  {job_id} may communicate in: {spans}")
    print()

    fair = run_jobs(specs, FairSharing(), n_iterations=50)
    gated = run_jobs(
        specs, FairSharing(), n_iterations=50, gates=schedule.gates()
    )
    rows = []
    for spec in specs:
        rows.append(
            (
                spec.job_id,
                f"{fair.mean_iteration_time(spec.job_id, skip=15) * 1e3:.0f}",
                f"{gated.mean_iteration_time(spec.job_id, skip=15) * 1e3:.0f}",
                f"{spec.solo_iteration_time(EFFECTIVE_BOTTLENECK) * 1e3:.0f}",
            )
        )
    print(ascii_table(
        ["job", "fair ms", "flow-scheduled ms", "solo ms"],
        rows,
        title="Flow scheduling: windows eliminate collisions outright",
    ))


if __name__ == "__main__":
    main()
