#!/usr/bin/env python
"""Compatibility analysis of a random job population.

Uses the geometric abstraction as a cluster operator would: draw a
population of training jobs, build the pairwise compatibility matrix,
inspect a unified circle for jobs with different iteration times, and
rank pairs by compatibility score.

Run:
    python examples/compatibility_analysis.py
"""

import numpy as np

from repro import (
    CompatibilityChecker,
    JobCircle,
    UnifiedCircle,
    WorkloadGenerator,
    ascii_table,
    gbps,
)
from repro.core.metrics import (
    compatibility_score,
    pairwise_compatibility_matrix,
)

CAPACITY = gbps(42)


def population_matrix() -> None:
    """Pairwise compatibility across a random 8-job population."""
    generator = WorkloadGenerator(seed=7, capacity=CAPACITY)
    jobs = generator.jobs(8)
    checker = CompatibilityChecker(capacity=CAPACITY)
    circles = checker.circles(jobs)
    matrix = pairwise_compatibility_matrix(circles)

    header = ["job (period ms, comm ms)"] + [c.job_id[-5:] for c in circles]
    rows = []
    for i, circle in enumerate(circles):
        label = (
            f"{circle.job_id} ({circle.perimeter}, {circle.comm_ticks})"
        )
        rows.append(
            [label] + ["Y" if matrix[i, j] else "." for j in range(len(circles))]
        )
    print(ascii_table(header, rows, title="Pairwise compatibility (exact)"))
    frac = (matrix.sum() - len(circles)) / (matrix.size - len(circles))
    print(f"\n{frac:.0%} of random pairs are pairwise compatible — "
          f"placement choices matter.\n")


def unified_circle_demo() -> None:
    """The Figure 5 construction on three jobs with different periods."""
    circles = [
        JobCircle.from_phases("fast", 45, 15),    # 60 ms iterations
        JobCircle.from_phases("medium", 70, 20),  # 90 ms iterations
        JobCircle.from_phases("slow", 150, 30),   # 180 ms iterations
    ]
    unified = UnifiedCircle(circles)
    print(f"unified perimeter = LCM(60, 90, 180) = {unified.perimeter} ms")
    print(f"communication demand = "
          f"{unified.utilization_lower_bound():.0%} of the circle")

    checker = CompatibilityChecker(capacity=CAPACITY)
    result = checker.check_circles(circles)
    print(f"compatible: {result.compatible} via {result.method}")
    if result.compatible:
        for job_id, ticks in result.rotations.items():
            print(f"  {job_id}: rotate {ticks} ms")
        coverage = unified.coverage(result.rotations)
        worst = max(count for _, _, count in coverage)
        print(f"  max jobs communicating at any instant: {worst}")
    print()


def score_ranking() -> None:
    """Rank candidate partners for one job by compatibility score."""
    anchor = JobCircle.from_phases("anchor", 210, 90)  # period 300
    candidates = {
        "twin": JobCircle.from_phases("twin", 210, 90),
        "light": JobCircle.from_phases("light", 280, 20),
        "heavy": JobCircle.from_phases("heavy", 100, 200),
        "odd-period": JobCircle.from_phases("odd-period", 160, 47),
    }
    rows = []
    for name, circle in candidates.items():
        score = compatibility_score([anchor, circle])
        rows.append((name, f"{score:.2f}"))
    rows.sort(key=lambda r: -float(r[1]))
    print(ascii_table(
        ["candidate partner", "compatibility score"],
        rows,
        title="Who should share a link with 'anchor' (300 ms, 90 ms comm)?",
    ))


def main() -> None:
    population_matrix()
    unified_circle_demo()
    score_ranking()


if __name__ == "__main__":
    main()
