#!/usr/bin/env python
"""Profile a job from its raw traffic, predict, then verify by simulation.

The full §4 scheduler workflow on one page:

1. run a job solo and record its NIC rate trace,
2. recover its on-off profile from the *trace alone* (no ground truth),
3. build its circle and check compatibility against a candidate partner,
4. predict the fair-sharing and best-case iteration times analytically,
5. verify both predictions in the phase-level simulator.

Run:
    python examples/profiling_and_prediction.py
"""

from repro import (
    CompatibilityChecker,
    JobCircle,
    JobSpec,
    ascii_table,
    gbps,
    make_policy,
    ms,
)
from repro.analysis.circleplot import render_coverage_band
from repro.core.prediction import (
    fair_lockstep_iteration_time,
    unfairness_speedup_estimate,
)
from repro.experiments.common import run_jobs
from repro.net.phasesim import PhaseLevelSimulator
from repro.net.topology import Topology
from repro.workloads.profiler import profile_trace

CAPACITY = gbps(42)


def main() -> None:
    # --- 1. run the job solo and record its traffic -------------------
    secret_spec = JobSpec(
        "mystery", compute_time=ms(141), comm_bytes=ms(114) * CAPACITY
    )
    topo = Topology.dumbbell(
        host_capacity=CAPACITY, bottleneck_capacity=CAPACITY
    )
    sim = PhaseLevelSimulator(topo, make_policy("fair"))
    run = sim.add_job(secret_spec, "ha0", "hb0", n_iterations=8)
    result = sim.run()

    # --- 2. profile from the trace alone ------------------------------
    profile = profile_trace(run.rate_trace, 0.0, result.duration)
    print(ascii_table(
        ["measured from trace", "value"],
        [
            ("iteration time", f"{profile.iteration_time * 1e3:.0f} ms"),
            ("compute phase", f"{profile.compute_time * 1e3:.0f} ms"),
            ("communication phase", f"{profile.comm_time * 1e3:.0f} ms"),
            ("bandwidth demand",
             f"{profile.bandwidth_demand * 8 / 1e9:.1f} Gbps"),
        ],
        title="Step 1-2: profiling a job in isolation (Figure 3's input)",
    ))
    print()

    # --- 3. compatibility against a candidate partner -----------------
    compute_ticks, comm_ticks = profile.circle_ticks(1000)
    mystery = JobCircle.from_phases("mystery", compute_ticks, comm_ticks)
    partner = JobCircle.from_phases("partner", 141, 114)
    checker = CompatibilityChecker(capacity=CAPACITY)
    verdict = checker.check_circles([mystery, partner])
    print(f"mystery + partner compatible: {verdict.compatible} "
          f"({verdict.method})")
    print("coverage:",
          render_coverage_band([mystery, partner], verdict.rotations,
                               width=60))
    print()

    # --- 4. analytic predictions --------------------------------------
    pair = [
        JobSpec("m1", ms(141), ms(114) * CAPACITY),
        JobSpec("m2", ms(141), ms(114) * CAPACITY),
    ]
    fair_predicted = fair_lockstep_iteration_time(pair, CAPACITY)
    speedup_predicted = unfairness_speedup_estimate(pair, CAPACITY)

    # --- 5. verify both in the simulator ------------------------------
    fair = run_jobs(pair, make_policy("fair"), n_iterations=30,
                    capacity=CAPACITY)
    unfair = run_jobs(
        pair, make_policy("weighted", order=["m1", "m2"]),
        n_iterations=30, capacity=CAPACITY,
    )
    fair_measured = fair.mean_iteration_time("m1", skip=10)
    speedup_measured = fair_measured / unfair.mean_iteration_time(
        "m1", skip=10
    )
    print(ascii_table(
        ["quantity", "predicted", "simulated"],
        [
            ("fair iteration time",
             f"{fair_predicted * 1e3:.0f} ms",
             f"{fair_measured * 1e3:.0f} ms"),
            ("unfairness speedup",
             f"{speedup_predicted:.2f}x",
             f"{speedup_measured:.2f}x"),
        ],
        title="Steps 4-5: analytic prediction vs simulation",
    ))


if __name__ == "__main__":
    main()
