#!/usr/bin/env python
"""Quickstart: is unfairness good for *your* pair of training jobs?

Builds two data-parallel training jobs, checks their compatibility with
the paper's geometric abstraction, then simulates them sharing a 42 Gbps
bottleneck under fair and unfair congestion control — reproducing the
paper's core observation in ~30 lines of API use.

Run:
    python examples/quickstart.py
"""

from repro import (
    CompatibilityChecker,
    JobSpec,
    ascii_table,
    gbps,
    make_policy,
    ms,
    rotation_to_degrees,
)
from repro.experiments.common import run_jobs

CAPACITY = gbps(42)


def main() -> None:
    # Two DLRM-like jobs: 701 ms of compute, then 300 ms worth of
    # gradient traffic per iteration (Table 1, group 2).
    j1 = JobSpec("dlrm-1", compute_time=ms(701),
                 comm_bytes=ms(300) * CAPACITY)
    j2 = JobSpec("dlrm-2", compute_time=ms(701),
                 comm_bytes=ms(300) * CAPACITY)

    # 1. The geometric abstraction: are these jobs compatible?
    checker = CompatibilityChecker(capacity=CAPACITY)
    verdict = checker.check([j1, j2])
    print(f"compatible: {verdict.compatible}  "
          f"(solver: {verdict.method}, certified: {verdict.certified})")
    for job_id, ticks in verdict.rotations.items():
        degrees = rotation_to_degrees(ticks, verdict.unified_perimeter)
        print(f"  rotate {job_id} by {ticks} ms = {degrees:.0f} deg")

    # 2. Simulate fair vs unfair sharing of the bottleneck.
    rows = []
    for name, policy in [
        ("fair", make_policy("fair")),
        ("unfair 2:1", make_policy("weighted", order=[j1.job_id, j2.job_id])),
        ("adaptive", make_policy("adaptive")),
    ]:
        result = run_jobs(
            [j1, j2], policy, n_iterations=30, capacity=CAPACITY,
            start_offsets={j2.job_id: ms(7)},
        )
        rows.append(
            (
                name,
                f"{result.mean_iteration_time(j1.job_id, skip=10) * 1e3:.0f}",
                f"{result.mean_iteration_time(j2.job_id, skip=10) * 1e3:.0f}",
            )
        )
    solo_ms = j1.solo_iteration_time(CAPACITY) * 1e3
    rows.append(("solo (dedicated)", f"{solo_ms:.0f}", f"{solo_ms:.0f}"))
    print()
    print(ascii_table(
        ["policy", f"{j1.job_id} ms", f"{j2.job_id} ms"],
        rows,
        title="Mean iteration time on the shared bottleneck",
    ))
    print()
    print("Unfairness (and the adaptive rule) recover dedicated-network "
          "speed for compatible jobs — the paper's headline result.")


if __name__ == "__main__":
    main()
