#!/usr/bin/env python
"""The adaptively-unfair congestion control (§4 i) in action.

Shows the self-organizing property the paper claims: with the
progress-scaled additive-increase rule, *compatible* jobs slide apart and
reach dedicated-network speed with no coordination, while *incompatible*
jobs degrade gracefully to fair sharing. Also prints the per-iteration
convergence so you can watch the sliding happen.

Run:
    python examples/adaptive_cc_demo.py
"""

from repro import JobSpec, ascii_table, gbps, ms
from repro.cc.adaptive import AdaptiveUnfair
from repro.cc.fair import FairSharing
from repro.experiments.common import run_jobs

CAPACITY = gbps(42)


def convergence_trace() -> None:
    """Watch two compatible jobs slide into each other's gaps."""
    j1 = JobSpec("J1", compute_time=ms(210), comm_bytes=ms(90) * CAPACITY)
    j2 = JobSpec("J2", compute_time=ms(210), comm_bytes=ms(90) * CAPACITY)
    result = run_jobs(
        [j1, j2], AdaptiveUnfair(), n_iterations=15, capacity=CAPACITY,
        start_offsets={"J2": ms(7)},
    )
    rows = []
    for index in range(15):
        rows.append(
            (
                index + 1,
                f"{result.jobs['J1'].records[index].duration * 1e3:.0f}",
                f"{result.jobs['J2'].records[index].duration * 1e3:.0f}",
            )
        )
    print(ascii_table(
        ["iteration", "J1 ms", "J2 ms"],
        rows,
        title="Convergence under adaptive unfairness (solo = 300 ms)",
    ))
    print()


def compatible_vs_incompatible() -> None:
    """Adaptive CC helps compatible pairs, never hurts incompatible ones."""
    pairs = {
        "compatible (30% comm)": (
            JobSpec("A1", ms(210), ms(90) * CAPACITY),
            JobSpec("A2", ms(210), ms(90) * CAPACITY),
        ),
        "incompatible (52% comm)": (
            JobSpec("B1", ms(100), ms(110) * CAPACITY),
            JobSpec("B2", ms(100), ms(110) * CAPACITY),
        ),
    }
    rows = []
    for label, (j1, j2) in pairs.items():
        offsets = {j2.job_id: ms(7)}
        fair = run_jobs([j1, j2], FairSharing(), 40, CAPACITY,
                        start_offsets=offsets)
        adaptive = run_jobs([j1, j2], AdaptiveUnfair(), 40, CAPACITY,
                            start_offsets=offsets)
        for job in (j1, j2):
            rows.append(
                (
                    label,
                    job.job_id,
                    f"{fair.mean_iteration_time(job.job_id, skip=15) * 1e3:.0f}",
                    f"{adaptive.mean_iteration_time(job.job_id, skip=15) * 1e3:.0f}",
                    f"{job.solo_iteration_time(CAPACITY) * 1e3:.0f}",
                )
            )
    print(ascii_table(
        ["pair", "job", "fair ms", "adaptive ms", "solo ms"],
        rows,
        title="Adaptive unfairness: help when possible, fair when not",
    ))


def main() -> None:
    convergence_trace()
    compatible_vs_incompatible()


if __name__ == "__main__":
    main()
