"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-use-pep517`` works on machines without the
``wheel`` package (PEP 660 editable installs need it).
"""

from setuptools import setup

setup()
