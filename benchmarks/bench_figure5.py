"""E6 — Figure 5: the unified circle for different iteration times.

Paper: jobs of 40 ms and 60 ms live on a circle of perimeter
LCM(40, 60) = 120 ms, with 3 and 2 communication phases per revolution;
rotating J1 by 30 degrees (10 ms) makes them fully compatible.
"""

from conftest import print_report

from repro.experiments import figure5


def test_figure5_unified_circle(benchmark):
    """Fig. 5 — LCM construction and the 30-degree separating rotation."""
    result = benchmark.pedantic(figure5.run, iterations=1, rounds=5)
    print_report("Figure 5 — unified circle via LCM", result.report())
    assert result.unified.perimeter == 120
    assert result.tiles == {"J1": 3, "J2": 2}
    assert result.result.compatible
