"""E11 — §4/§5: compatibility-aware placement vs locality-only.

Paper: "the problem of job placement should be related not only to
available resources on servers but also to compatibility on links". A new
job spilling across racks lands next to a compatible resident under the
compatibility-aware policy and next to an incompatible one under
locality-only consolidation.
"""

import pytest
from conftest import print_report

from repro.experiments import scheduler_exp


def test_placement_policies(benchmark):
    """Compatibility-aware placement keeps every job at solo speed."""
    outcomes = benchmark.pedantic(
        scheduler_exp.run_policies,
        kwargs={"n_iterations": 50},
        iterations=1,
        rounds=1,
    )
    print_report(
        "S4 placement — compatibility-aware vs locality-only",
        scheduler_exp.report(outcomes),
    )
    by_name = {o.policy_name: o for o in outcomes}
    compat = by_name["compatibility-aware"]
    assert compat.mixed_links == 0
    assert compat.mean_slowdown == pytest.approx(1.0, abs=0.02)
    for name, outcome in by_name.items():
        assert compat.mean_slowdown <= outcome.mean_slowdown + 1e-9, name


def test_placement_policies_at_scale(benchmark):
    """Seven jobs on ten racks: the ordering survives at scale."""
    outcomes = benchmark.pedantic(
        scheduler_exp.run_large_scale,
        kwargs={"n_iterations": 40},
        iterations=1,
        rounds=1,
    )
    print_report(
        "S4 placement at scale — 7 jobs on 10 racks",
        scheduler_exp.report(outcomes),
    )
    by_name = {o.policy_name: o for o in outcomes}
    compat = by_name["compatibility-aware"]
    assert compat.mixed_links == 0
    assert compat.mean_slowdown == pytest.approx(1.0, abs=0.02)
    assert by_name["random"].mean_slowdown > 1.2
    assert compat.mean_slowdown <= (
        by_name["consolidated"].mean_slowdown + 1e-9
    )
