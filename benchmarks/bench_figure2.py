"""E3 — Figure 2: link utilization and the sliding effect.

Paper: under fair sharing both VGG19 jobs hold ~50% of the bottleneck in
every iteration; under unfairness the contention region shrinks each
iteration until the communication phases interleave (J1's first iteration
ends at ~0.28 s, J2's at ~0.32 s; their second communication phases start
at ~0.38 s and ~0.42 s).
"""

from conftest import print_report

from repro.experiments import figure2


def test_figure2_sliding(benchmark):
    """Fig. 2a/2b — utilization time-series and the time anchors."""
    result = benchmark.pedantic(
        figure2.run, kwargs={"n_iterations": 8}, iterations=1, rounds=3
    )
    print_report("Figure 2 — fair vs unfair link utilization",
                 result.report())
    anchors = result.anchors()
    assert anchors["J1 first iteration end"] < (
        anchors["J2 first iteration end"]
    )
    overlaps = result.overlap_per_iteration(4)
    assert overlaps[0] > overlaps[3]
