"""Append benchmark medians to the in-repo perf history.

ROADMAP item 4 wants perf regressions "visible in-repo, not just in CI
artifacts": every bench run writes ``BENCH_<name>.json`` files (see
``conftest.py``), and this script folds their medians — plus each
benchmark's ``extra_info`` figures (speedups, jobs/day, ...) — into
``bench_history.json`` at the repo root, keyed by commit.

Usage (from the repo root, after a bench run)::

    python benchmarks/append_history.py [--artifacts-dir bench-artifacts]
                                        [--history bench_history.json]
                                        [--commit SHA]

The commit defaults to ``$GITHUB_SHA`` (set in CI) or ``git rev-parse
--short HEAD``. Re-running for the same commit replaces that commit's
entries instead of duplicating them, so the CI bench legs can invoke it
idempotently and developers can refresh their PR's row before pushing.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

PREFIX = "BENCH_"


def resolve_commit(explicit: str | None) -> str:
    """``--commit`` > ``$GITHUB_SHA`` > ``git rev-parse --short HEAD``."""
    if explicit:
        return explicit
    env = os.environ.get("GITHUB_SHA")
    if env:
        return env[:12]
    out = subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"],
        capture_output=True,
        text=True,
        check=True,
    )
    return out.stdout.strip()


def load_artifacts(artifacts_dir: Path) -> list[dict]:
    """One record per ``BENCH_*.json``: name, median, extra_info."""
    records = []
    for path in sorted(artifacts_dir.glob(f"{PREFIX}*.json")):
        with open(path) as handle:
            data = json.load(handle)
        records.append(
            {
                "bench": path.stem[len(PREFIX):],
                "median_s": data.get("median"),
                "extra": dict(data.get("extra_info") or {}),
            }
        )
    return records


def append(history_path: Path, commit: str, records: list[dict]) -> dict:
    """Merge ``records`` under ``commit``; returns the updated history."""
    if history_path.exists():
        with open(history_path) as handle:
            history = json.load(handle)
    else:
        history = {
            "comment": (
                "Benchmark medians per commit; appended by "
                "benchmarks/append_history.py from BENCH_*.json artifacts."
            ),
            "entries": [],
        }
    kept = [
        entry
        for entry in history["entries"]
        if not (
            entry["commit"] == commit
            and any(entry["bench"] == record["bench"] for record in records)
        )
    ]
    for record in records:
        kept.append({"commit": commit, **record})
    history["entries"] = kept
    with open(history_path, "w") as handle:
        json.dump(history, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return history


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--artifacts-dir", default="bench-artifacts")
    parser.add_argument("--history", default="bench_history.json")
    parser.add_argument("--commit", default=None)
    args = parser.parse_args(argv)

    artifacts_dir = Path(args.artifacts_dir)
    records = load_artifacts(artifacts_dir)
    if not records:
        print(
            f"error: no {PREFIX}*.json artifacts under {artifacts_dir}/ "
            "(run `pytest benchmarks/ --benchmark-only` first)",
            file=sys.stderr,
        )
        return 1
    commit = resolve_commit(args.commit)
    history = append(Path(args.history), commit, records)
    names = ", ".join(record["bench"] for record in records)
    print(
        f"{args.history}: {len(history['entries'])} entries "
        f"({len(records)} appended @ {commit}: {names})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
