"""Append benchmark medians to the in-repo perf history.

ROADMAP item 4 wants perf regressions "visible in-repo, not just in CI
artifacts": every bench run writes ``BENCH_<name>.json`` files (see
``conftest.py``), and this script folds their medians — plus each
benchmark's ``extra_info`` figures (speedups, jobs/day, ...) — into
``bench_history.json`` at the repo root, keyed by commit.

Usage (from the repo root, after a bench run)::

    python benchmarks/append_history.py [--artifacts-dir bench-artifacts]
                                        [--history bench_history.json]
                                        [--commit SHA]

The commit defaults to ``$GITHUB_SHA`` (set in CI) or ``git rev-parse
--short HEAD``. Re-running for the same commit replaces that commit's
entries instead of duplicating them, so the CI bench legs can invoke it
idempotently and developers can refresh their PR's row before pushing.

With ``--check`` the script additionally acts as the perf-trend guard:
each new median is compared against the most recent history entry for
the same bench from a *different* commit, and the run fails when any
bench slowed down by more than :data:`REGRESSION_TOLERANCE`. The
history is still appended first, so the failing leg's log and artifact
show exactly the numbers that tripped the guard. Intentional slowdowns
opt out by putting ``[bench-regression-ok]`` in the commit message (or
passing ``--allow-regression`` / setting ``$BENCH_ALLOW_REGRESSION``).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

PREFIX = "BENCH_"

#: ``--check`` fails when a bench's median exceeds the previous
#: commit's by more than this factor (>25% slowdown).
REGRESSION_TOLERANCE = 1.25

#: Medians below this are timer-noise-dominated micro-benches (some in
#: the history sit at microseconds); ``--check`` skips them rather
#: than fail CI on scheduler jitter.
MIN_COMPARABLE_S = 1e-3

#: Commit-message marker that waives the regression check for one
#: intentional perf change.
OPT_OUT_MARKER = "[bench-regression-ok]"


def resolve_commit(explicit: str | None) -> str:
    """``--commit`` > ``$GITHUB_SHA`` > ``git rev-parse --short HEAD``."""
    if explicit:
        return explicit
    env = os.environ.get("GITHUB_SHA")
    if env:
        return env[:12]
    out = subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"],
        capture_output=True,
        text=True,
        check=True,
    )
    return out.stdout.strip()


def load_artifacts(artifacts_dir: Path) -> list[dict]:
    """One record per ``BENCH_*.json``: name, median, extra_info."""
    records = []
    for path in sorted(artifacts_dir.glob(f"{PREFIX}*.json")):
        with open(path) as handle:
            data = json.load(handle)
        records.append(
            {
                "bench": path.stem[len(PREFIX):],
                "median_s": data.get("median"),
                "extra": dict(data.get("extra_info") or {}),
            }
        )
    return records


def append(history_path: Path, commit: str, records: list[dict]) -> dict:
    """Merge ``records`` under ``commit``; returns the updated history."""
    if history_path.exists():
        with open(history_path) as handle:
            history = json.load(handle)
    else:
        history = {
            "comment": (
                "Benchmark medians per commit; appended by "
                "benchmarks/append_history.py from BENCH_*.json artifacts."
            ),
            "entries": [],
        }
    kept = [
        entry
        for entry in history["entries"]
        if not (
            entry["commit"] == commit
            and any(entry["bench"] == record["bench"] for record in records)
        )
    ]
    for record in records:
        kept.append({"commit": commit, **record})
    history["entries"] = kept
    with open(history_path, "w") as handle:
        json.dump(history, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return history


def find_regressions(
    history: dict, records: list[dict], commit: str
) -> list[str]:
    """Complaints for records slower than their last distinct-commit
    entry by more than :data:`REGRESSION_TOLERANCE`."""
    complaints = []
    for record in records:
        median = record.get("median_s")
        if not median or median < MIN_COMPARABLE_S:
            continue
        prior = next(
            (
                entry
                for entry in reversed(history.get("entries", []))
                if entry["bench"] == record["bench"]
                and entry["commit"] != commit
                and entry.get("median_s")
            ),
            None,
        )
        if prior is None:
            continue
        ratio = median / prior["median_s"]
        if ratio > REGRESSION_TOLERANCE:
            complaints.append(
                f"{record['bench']}: {median:.4f}s vs "
                f"{prior['median_s']:.4f}s @ {prior['commit']} "
                f"({ratio:.2f}x > {REGRESSION_TOLERANCE}x)"
            )
    return complaints


def regression_allowed() -> bool:
    """Whether an intentional slowdown was declared for this commit."""
    if os.environ.get("BENCH_ALLOW_REGRESSION"):
        return True
    out = subprocess.run(
        ["git", "log", "-1", "--format=%B"],
        capture_output=True,
        text=True,
    )
    return out.returncode == 0 and OPT_OUT_MARKER in out.stdout


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--artifacts-dir", default="bench-artifacts")
    parser.add_argument("--history", default="bench_history.json")
    parser.add_argument("--commit", default=None)
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"fail on a >{REGRESSION_TOLERANCE}x median regression "
        "vs the previous commit's entry for the same bench",
    )
    parser.add_argument(
        "--allow-regression",
        action="store_true",
        help="waive --check for an intentional perf change "
        f"(equivalent: {OPT_OUT_MARKER!r} in the commit message)",
    )
    args = parser.parse_args(argv)

    artifacts_dir = Path(args.artifacts_dir)
    records = load_artifacts(artifacts_dir)
    if not records:
        print(
            f"error: no {PREFIX}*.json artifacts under {artifacts_dir}/ "
            "(run `pytest benchmarks/ --benchmark-only` first)",
            file=sys.stderr,
        )
        return 1
    commit = resolve_commit(args.commit)
    history = append(Path(args.history), commit, records)
    names = ", ".join(record["bench"] for record in records)
    print(
        f"{args.history}: {len(history['entries'])} entries "
        f"({len(records)} appended @ {commit}: {names})"
    )
    if args.check:
        complaints = find_regressions(history, records, commit)
        if complaints and not (
            args.allow_regression or regression_allowed()
        ):
            for complaint in complaints:
                print(f"perf regression: {complaint}", file=sys.stderr)
            print(
                f"opt out with {OPT_OUT_MARKER!r} in the commit "
                "message if the slowdown is intentional",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
