"""E10 — §4(iii): precise flow scheduling from rotation angles.

Paper: the solver's rotation angle is a time-shift for each job's
communication phase; releasing flows only inside the derived windows
avoids collisions entirely, with no transport-level unfairness at all.
"""

import pytest
from conftest import print_report

from repro.analysis.report import ascii_table
from repro.cc.fair import FairSharing
from repro.core.compatibility import CompatibilityChecker
from repro.experiments.common import run_jobs
from repro.mechanisms.flow_scheduling import FlowSchedule
from repro.workloads.profiles import EFFECTIVE_BOTTLENECK, table1_groups


def _run_flow_scheduling(n_iterations=50, skip=15):
    group = table1_groups()[4]  # compatible triple
    specs = group.specs
    checker = CompatibilityChecker()
    result = checker.check(specs)
    schedule = FlowSchedule.from_compatibility(
        checker.circles(specs), result, checker.ticks_per_second
    )
    fair = run_jobs(specs, FairSharing(), n_iterations=n_iterations)
    gated = run_jobs(
        specs, FairSharing(), n_iterations=n_iterations,
        gates=schedule.gates(),
    )
    rows = []
    for spec in specs:
        rows.append(
            (
                spec.job_id,
                fair.mean_iteration_time(spec.job_id, skip=skip) * 1e3,
                gated.mean_iteration_time(spec.job_id, skip=skip) * 1e3,
                spec.solo_iteration_time(EFFECTIVE_BOTTLENECK) * 1e3,
            )
        )
    return result, rows


def test_flow_scheduling(benchmark):
    """Rotation-derived windows keep every job at solo speed."""
    result, rows = benchmark.pedantic(
        _run_flow_scheduling, iterations=1, rounds=1
    )
    print_report(
        "S4(iii) — precise flow scheduling from rotations",
        ascii_table(
            ["job", "fair ms", "scheduled ms", "solo ms"],
            [
                (job, f"{fair:.0f}", f"{sched:.0f}", f"{solo:.0f}")
                for job, fair, sched, solo in rows
            ],
        )
        + f"\nrotations (ticks): {result.rotations}",
    )
    assert result.compatible
    for job, fair_ms, sched_ms, solo_ms in rows:
        assert sched_ms == pytest.approx(solo_ms, rel=0.02), job
        assert sched_ms <= fair_ms + 1e-6, job
