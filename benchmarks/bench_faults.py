"""Perf guard: the fault-injection runtime must be free when unused.

An empty :class:`~repro.faults.InjectionSchedule` collapses to a single
NORMAL capacity window and must take the exact clean-run code path, so
attaching one to the vectorized DCQCN engine may cost at most
:data:`MAX_OVERHEAD` wall-clock overhead versus ``faults=None`` — and
must stay bit-identical to it. A faulted run is timed alongside for the
artifact record (window boundaries truncate the span fast-forward, so
some slowdown there is expected and not guarded).
"""

import time

import numpy as np

from conftest import print_report

from repro.cc.dcqcn import (
    DEFAULT_TIMER,
    DcqcnFluidSimulator,
    DcqcnParams,
    OnOffDcqcnJob,
)
from repro.faults import InjectionSchedule, LinkFailure, RateChange
from repro.units import gbps

#: Max wall-clock ratio (empty schedule / no schedule) on the vector
#: engine. The empty schedule is the same code path; the margin only
#: absorbs timer noise.
MAX_OVERHEAD = 1.10

_DURATION = 1.2

#: Mid-run perturbations for the informational faulted timing.
_FAULTED = InjectionSchedule(events=(
    RateChange("L1", 0.2, 0.4, 0.5),
    LinkFailure("L1", 0.7, 0.8),
))


def _run(faults):
    sim = DcqcnFluidSimulator(
        capacity=gbps(50), dt=10e-6, engine="vector", faults=faults
    )
    params = DcqcnParams(line_rate=gbps(50))
    jobs = []
    for index in range(2):
        job = OnOffDcqcnJob(
            f"J{index + 1}",
            params.with_timer(DEFAULT_TIMER * 2),
            np.random.default_rng(10 + index),
            compute_time=0.1,
            comm_bytes=0.11 * gbps(42),
            start_offset=index * 0.004,
        )
        sim.add_source(job)
        jobs.append(job)
    start = time.perf_counter()
    result = sim.run(_DURATION)
    elapsed = time.perf_counter() - start
    return result, jobs, elapsed


def _best_of(faults, repeats=3):
    best = None
    for _ in range(repeats):
        result, jobs, elapsed = _run(faults)
        if best is None or elapsed < best[2]:
            best = (result, jobs, elapsed)
    return best


def test_faults(benchmark):
    """Empty schedule: bit-identical to faults=None, <= 10% overhead."""
    result_clean, jobs_clean, clean_time = _best_of(None)
    result_empty, jobs_empty, empty_time = _best_of(InjectionSchedule())
    benchmark.pedantic(
        lambda: _run(InjectionSchedule()), iterations=1, rounds=1
    )
    _, _, faulted_time = _best_of(_FAULTED)

    # Identity check: the empty schedule is the clean code path.
    for name in result_clean.rate_series:
        assert np.array_equal(
            result_clean.rate_series[name].values,
            result_empty.rate_series[name].values,
        ), name
    assert np.array_equal(
        result_clean.queue_series.values,
        result_empty.queue_series.values,
    )
    for job_c, job_e in zip(jobs_clean, jobs_empty):
        assert repr(job_c.timeline.__dict__) == repr(job_e.timeline.__dict__)

    overhead = empty_time / clean_time
    benchmark.extra_info["clean_seconds"] = clean_time
    benchmark.extra_info["empty_schedule_seconds"] = empty_time
    benchmark.extra_info["faulted_seconds"] = faulted_time
    benchmark.extra_info["empty_overhead"] = overhead
    benchmark.extra_info["max_overhead"] = MAX_OVERHEAD

    print_report(
        "Fault runtime overhead (DCQCN vector engine, "
        f"{_DURATION:g}s simulated)",
        "\n".join([
            f"faults=None            : {clean_time * 1e3:8.1f} ms",
            f"empty InjectionSchedule: {empty_time * 1e3:8.1f} ms "
            f"({overhead:.3f}x, guard <= {MAX_OVERHEAD:g}x)",
            f"faulted (dip + failure): {faulted_time * 1e3:8.1f} ms "
            "(informational)",
        ]),
    )
    assert overhead <= MAX_OVERHEAD, (
        f"empty-schedule overhead {overhead:.3f}x exceeds "
        f"{MAX_OVERHEAD:g}x"
    )
