"""E4 — Figure 3: the geometric abstraction for VGG16.

Paper: iteration time 255 ms, the first 141 ms pure computation; rolling
the demand trace around a 255-unit circle lands every iteration's
communication on the same arc.
"""

from conftest import print_report

from repro.experiments import figure3


def test_figure3_circle(benchmark):
    """Fig. 3 — build the VGG16 circle and verify the roll."""
    result = benchmark.pedantic(
        figure3.run, kwargs={"n_iterations": 5}, iterations=1, rounds=5
    )
    print_report("Figure 3 — VGG16 on its circle", result.report())
    assert result.perimeter_ms == 255
    assert result.comm_arc_ms == (141, 255)
    assert result.roll_is_consistent()
