"""Benchmark configuration.

Each ``bench_*.py`` regenerates one paper artifact (see DESIGN.md's
per-experiment index): it runs the experiment driver under
``pytest-benchmark`` and prints the same rows/series the paper reports so
the output can be compared side-by-side with the paper.

Run them with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


def print_report(title: str, body: str) -> None:
    """Print an experiment report block (visible with ``-s``)."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(body)
