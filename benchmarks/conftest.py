"""Benchmark configuration.

Each ``bench_*.py`` regenerates one paper artifact (see DESIGN.md's
per-experiment index): it runs the experiment driver under
``pytest-benchmark`` and prints the same rows/series the paper reports so
the output can be compared side-by-side with the paper.

Run them with::

    pytest benchmarks/ --benchmark-only -s

Every benchmark additionally writes a machine-readable
``BENCH_<name>.json`` artifact (timings plus any ``extra_info`` the
benchmark attached) into ``$BENCH_ARTIFACTS_DIR`` (default
``bench-artifacts/``), which is what CI uploads to track the perf
trajectory over time.
"""

import json
import os
import re

import pytest


def print_report(title: str, body: str) -> None:
    """Print an experiment report block (visible with ``-s``)."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(body)


def _artifact_name(bench_name: str) -> str:
    """``test_adaptive_cc[x]`` -> ``adaptive_cc_x`` (filesystem-safe)."""
    name = bench_name
    if name.startswith("test_"):
        name = name[len("test_"):]
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", name).strip("_")


def pytest_sessionfinish(session, exitstatus):
    """Write one ``BENCH_<name>.json`` per benchmark that ran."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    outdir = os.environ.get("BENCH_ARTIFACTS_DIR", "bench-artifacts")
    os.makedirs(outdir, exist_ok=True)
    for bench in bench_session.benchmarks:
        record = bench.as_dict(include_data=False, flat=True)
        path = os.path.join(
            outdir, f"BENCH_{_artifact_name(bench.name)}.json"
        )
        with open(path, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True, default=str)
