"""Perf guard: batched grid execution vs per-run vector execution.

Stacks a 64-point sweep grid — 64 DCQCN runs of 32 senders each on a
persistently congested 1 Gbps bottleneck, with per-run staggered CNP
intervals and alternating rate-increase timers — into one
:class:`repro.cc.grid_bank.GridBank` via :func:`repro.cc.grid_bank.
run_grid`, asserts every run's rate series, queue series and final RNG
stream position is bit-identical to running the 64 simulators one at a
time, and guards the wall-clock speedup the stacked kernel must deliver
over the per-run vector loop. CI runs this as the grid smoke leg and
fails on any divergence.
"""

import time

import numpy as np

from conftest import print_report

from repro.cc.dcqcn import (
    AGGRESSIVE_TIMER,
    DEFAULT_TIMER,
    DcqcnFluidSimulator,
    DcqcnParams,
    RedEcnMarker,
)
from repro.cc.grid_bank import run_grid
from repro.units import gbps

#: Wall-clock factor the stacked grid kernel must beat 64 sequential
#: vector runs by (measured ~9.9x; margin absorbs CI noise). The
#: issue's acceptance floor for batched sweep grids.
MIN_SPEEDUP = 4.0

_RUNS = 64
_SENDERS = 32
_DURATION = 0.01
_CAPACITY = gbps(1)


def _build_grid():
    """The 64-point grid: one oversubscribed simulator per point.

    32 senders at the default floor rate swamp the 1 Gbps bottleneck,
    so the queue sits above ``kmax`` and every CNP check marks
    (``pmax=1``) — the sustained-congestion regime where per-run
    execution pays the full per-tick Python cost for every sender.
    """
    sims, rngs = [], []
    for k in range(_RUNS):
        sim = DcqcnFluidSimulator(
            capacity=_CAPACITY,
            marker=RedEcnMarker(pmax=1.0),
            engine="vector",
        )
        run_rngs = []
        for s in range(_SENDERS):
            # Stagger the CNP interval per sender so some sender's
            # next check is always imminent: the per-run engine can
            # never span-fast-forward and pays the full tick loop,
            # exactly the regime sweep grids hit in practice.
            params = DcqcnParams(
                line_rate=_CAPACITY,
                timer=(DEFAULT_TIMER, AGGRESSIVE_TIMER)[k % 2],
                cnp_interval=200e-6 * (1.0 + 0.05 * s),
            )
            rng = np.random.default_rng(1000 * k + s)
            sim.add_sender(f"J{s + 1}", params, rng)
            run_rngs.append(rng)
        sims.append(sim)
        rngs.append(run_rngs)
    return sims, rngs


def _sequential(sims):
    start = time.perf_counter()
    traces = [sim.run(_DURATION) for sim in sims]
    return traces, time.perf_counter() - start


def _batched(sims):
    start = time.perf_counter()
    traces = run_grid(sims, _DURATION)
    return traces, time.perf_counter() - start


def test_grid_bank_speedup(benchmark):
    """Stacked grid execution is bit-identical to per-run and faster."""
    solo_sims, solo_rngs = _build_grid()
    solo_traces, sequential_time = _sequential(solo_sims)

    grid_sims, grid_rngs = _build_grid()
    grid_traces, first = _batched(grid_sims)
    grid_time = min(first, _batched(_build_grid()[0])[1])
    benchmark.pedantic(
        lambda: _batched(_build_grid()[0]), iterations=1, rounds=1
    )

    # Divergence check: every sampled series and every sender's final
    # RNG stream position must be byte-identical across paths.
    for trace_s, trace_g in zip(solo_traces, grid_traces):
        assert set(trace_s.rate_series) == set(trace_g.rate_series)
        for name in trace_s.rate_series:
            assert np.array_equal(
                trace_s.rate_series[name].times,
                trace_g.rate_series[name].times,
            ), name
            assert np.array_equal(
                trace_s.rate_series[name].values,
                trace_g.rate_series[name].values,
            ), name
        assert np.array_equal(
            trace_s.queue_series.values, trace_g.queue_series.values
        )
    for run_s, run_g in zip(solo_rngs, grid_rngs):
        for rng_s, rng_g in zip(run_s, run_g):
            assert (
                rng_s.bit_generator.state == rng_g.bit_generator.state
            )

    speedup = sequential_time / grid_time
    benchmark.extra_info["sequential_seconds"] = sequential_time
    benchmark.extra_info["grid_seconds"] = grid_time
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["paths_identical"] = True
    benchmark.extra_info["runs"] = _RUNS
    benchmark.extra_info["senders_per_run"] = _SENDERS
    print_report(
        "grid bank — stacked sweep grid vs per-run vector execution",
        f"grid points: {_RUNS} runs x {_SENDERS} senders\n"
        f"sequential: {sequential_time:.3f}s\n"
        f"batched:    {grid_time:.3f}s\n"
        f"speedup: {speedup:.2f}x (floor {MIN_SPEEDUP}x)",
    )
    assert speedup >= MIN_SPEEDUP
