"""E16 — population sweep: when does compatibility-aware sharing matter?

Random equal-period pairs are always fully compatible below a 50%
communication fraction — with an unfairness payoff of roughly ``1 + f`` —
and never above it; mixed-period pairs are almost never fully compatible
(the gcd constraint), which quantifies why the paper's §5 suggests the
scheduler adjust hyper-parameters (i.e. align iteration times).
"""

import json
import os
import time

import pytest
from conftest import print_report

from repro.experiments import sweep
from repro.experiments.sweep import point_specs
from repro.runner import run_many


def test_population_sweep(benchmark):
    """Compatibility collapses at the 50% comm-fraction threshold."""
    points = benchmark.pedantic(
        sweep.run,
        kwargs={"pairs_per_point": 40},
        iterations=1,
        rounds=1,
    )
    print_report("Population sweep (equal periods)", sweep.report(points))
    by_fraction = {p.comm_fraction: p for p in points}
    assert by_fraction[0.3].compatible_rate == 1.0
    assert by_fraction[0.7].compatible_rate == 0.0
    # Payoff scales with the communication fraction.
    assert by_fraction[0.45].mean_speedup > by_fraction[0.2].mean_speedup


def test_mixed_periods_rarely_fully_compatible(benchmark):
    """Unequal periods almost never mesh exactly — tune them instead."""
    points = benchmark.pedantic(
        sweep.run,
        kwargs={"pairs_per_point": 40, "same_period": False},
        iterations=1,
        rounds=1,
    )
    print_report("Population sweep (mixed periods)", sweep.report(points))
    rates = [p.compatible_rate for p in points]
    assert max(rates) <= 0.2


def _timed_sweep(jobs: int) -> tuple:
    """One heavy sweep through the runner; returns (output, seconds)."""
    specs = point_specs(
        (0.2, 0.3, 0.4, 0.45),
        pairs_per_point=25_000,
        same_period=True,
        seed=0,
    )
    start = time.perf_counter()
    results = run_many(specs, jobs=jobs, cache=False)
    elapsed = time.perf_counter() - start
    output = json.dumps([r.data for r in results], sort_keys=True)
    return output, elapsed


def test_parallel_sweep_identical_and_faster():
    """``--jobs 4`` returns byte-identical output, markedly faster.

    Each fraction level is an independent spec with its own derived
    seed, so fan-out cannot change any level's sample stream — the
    serial and parallel outputs must serialize identically. The >= 2x
    wall-clock claim only holds with real cores behind the pool, so it
    is skipped on small containers.
    """
    serial_output, serial_s = _timed_sweep(jobs=1)
    parallel_output, parallel_s = _timed_sweep(jobs=4)
    assert parallel_output == serial_output
    print_report(
        "Parallel sweep (4 specs x 25k pairs)",
        f"serial {serial_s:.2f}s vs --jobs 4 {parallel_s:.2f}s "
        f"({serial_s / parallel_s:.2f}x)",
    )
    if (os.cpu_count() or 1) < 4:
        pytest.skip("needs >= 4 cores for the speedup assertion")
    assert serial_s / parallel_s >= 2.0
