"""E16 — population sweep: when does compatibility-aware sharing matter?

Random equal-period pairs are always fully compatible below a 50%
communication fraction — with an unfairness payoff of roughly ``1 + f`` —
and never above it; mixed-period pairs are almost never fully compatible
(the gcd constraint), which quantifies why the paper's §5 suggests the
scheduler adjust hyper-parameters (i.e. align iteration times).
"""

from conftest import print_report

from repro.experiments import sweep


def test_population_sweep(benchmark):
    """Compatibility collapses at the 50% comm-fraction threshold."""
    points = benchmark.pedantic(
        sweep.run,
        kwargs={"pairs_per_point": 40},
        iterations=1,
        rounds=1,
    )
    print_report("Population sweep (equal periods)", sweep.report(points))
    by_fraction = {p.comm_fraction: p for p in points}
    assert by_fraction[0.3].compatible_rate == 1.0
    assert by_fraction[0.7].compatible_rate == 0.0
    # Payoff scales with the communication fraction.
    assert by_fraction[0.45].mean_speedup > by_fraction[0.2].mean_speedup


def test_mixed_periods_rarely_fully_compatible(benchmark):
    """Unequal periods almost never mesh exactly — tune them instead."""
    points = benchmark.pedantic(
        sweep.run,
        kwargs={"pairs_per_point": 40, "same_period": False},
        iterations=1,
        rounds=1,
    )
    print_report("Population sweep (mixed periods)", sweep.report(points))
    rates = [p.compatible_rate for p in points]
    assert max(rates) <= 0.2
