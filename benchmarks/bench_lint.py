"""Perf guard: the two-pass linter over the whole package tree.

The lint job runs on every CI push, so analyzer cost is a developer-
facing latency budget. This benchmark times a full ``lint_paths`` run
(index pass + semantic pass, all rules) over ``src/repro`` and records
the tree size alongside the timing in ``BENCH_lint.json`` so the perf
trajectory tracks files-per-second, not just wall-clock.

It also cross-checks the parallel index pass: ``jobs=4`` must produce a
report identical to the serial run (byte-for-byte on the JSON
document) — determinism is part of the linter's contract, so a perf
run that diverges is a failure, not a data point.
"""

from pathlib import Path

from conftest import print_report

import repro
from repro.lint import lint_paths

PACKAGE_DIR = Path(repro.__file__).resolve().parent


def test_lint(benchmark):
    """Full-tree two-pass lint; serial timing, jobs=4 parity check."""
    report = benchmark(lambda: lint_paths([str(PACKAGE_DIR)]))

    parallel = lint_paths([str(PACKAGE_DIR)], jobs=4)
    assert report.to_dict() == parallel.to_dict()
    assert report.ok, "the package tree must lint clean"

    benchmark.extra_info["files"] = report.files
    benchmark.extra_info["findings"] = len(report.findings)
    benchmark.extra_info["baselined"] = len(report.baselined)

    print_report(
        "repro-lint full-tree analysis",
        f"files scanned        {report.files}\n"
        f"fresh findings       {len(report.findings)}\n"
        f"baselined findings   {len(report.baselined)}\n"
        "jobs=4 parity        byte-identical",
    )
