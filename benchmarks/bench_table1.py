"""E7 — Table 1: fair vs unfair iteration times for five job groups.

Paper: groups 2 (DLRM pair), 4 (WideResNet + VGG16) and 5 (VGG19 + VGG16 +
ResNet50) are fully compatible — unfairness speeds up every member
(1.28-1.3x, 1.07-1.08x, 1.01-1.18x). Groups 1 and 3 are incompatible —
unfairness helps the aggressive job but hurts a victim (VGG19 0.94x,
WideResNet 0.92x).
"""

from conftest import print_report

from repro.experiments import table1


def test_table1_all_groups(benchmark):
    """Table 1 — compatibility verdicts plus fair/unfair simulation."""
    results = benchmark.pedantic(
        table1.run_all,
        kwargs={"n_iterations": 60, "skip": 15},
        iterations=1,
        rounds=1,
    )
    print_report("Table 1 — unfairness only helps compatible groups",
                 table1.report(results))
    for result in results:
        assert result.verdict_matches_paper, result.group.name
        if result.group.paper_compatible:
            assert result.all_members_sped_up, result.group.name
        else:
            assert any(r.speedup < 1.0 for r in result.rows), (
                result.group.name
            )
