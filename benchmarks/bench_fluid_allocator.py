"""Microbenchmark: weighted max-min progressive filling.

The allocator runs inside the event-driven tiers' innermost
reallocation loop, so its fill-round cost is a direct multiplier on
every phase-level experiment. This pins the cost of a mixed workload —
many flows, shared bottlenecks, several priority classes and rate caps
— after the per-link active-weight sums were deduplicated to one
computation per fill round.
"""

from conftest import print_report

from repro.net.fluid import FluidAllocator
from repro.net.flows import Flow
from repro.net.topology import Link
from repro.units import gbps


def _workload():
    """40 flows over 8 shared links, 2 priority classes, some caps."""
    links = [
        Link(src=f"t{i}", dst="core", capacity=gbps(100), name=f"up{i}")
        for i in range(4)
    ] + [
        Link(src="core", dst=f"t{i}", capacity=gbps(100), name=f"down{i}")
        for i in range(4)
    ]
    flows = []
    for i in range(40):
        up = links[i % 4]
        down = links[4 + (i * 7) % 4]
        flows.append(
            Flow(
                flow_id=f"f{i}",
                src=up.src,
                dst=down.dst,
                links=[up, down],
                weight=1.0 + (i % 3),
                priority=i % 2,
                rate_cap=gbps(40) if i % 5 == 0 else None,
            )
        )
    return flows


def test_fluid_allocator(benchmark):
    """Allocation stays max-min feasible; timing tracked in the JSON."""
    flows = _workload()
    allocator = FluidAllocator()
    allocation = benchmark(allocator.allocate, flows)
    # Work-conservation sanity: every flow got a positive rate and no
    # link is oversubscribed (allocate() itself asserts the latter).
    assert all(rate > 0 for rate in allocation.rates.values())
    assert len(allocation.rates) == len(flows)
    loads = [
        f"{link.name}: {allocation.utilization(link):.3f}"
        for link in sorted(allocation.link_loads, key=lambda l: l.name)
    ]
    print_report("fluid allocator — link utilization", "\n".join(loads))
