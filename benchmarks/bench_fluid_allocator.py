"""Microbenchmark: weighted max-min progressive filling.

The allocator runs inside the event-driven tiers' innermost
reallocation loop, so its fill-round cost is a direct multiplier on
every phase-level experiment. This pins the cost of a mixed workload —
many flows, shared bottlenecks, several priority classes and rate caps
— after the per-link active-weight sums were deduplicated to one
computation per fill round.
"""

from conftest import print_report

from repro.net.fluid import FluidAllocator
from repro.net.flows import Flow
from repro.net.topology import Link
from repro.units import gbps


def _workload():
    """40 flows over 8 shared links, 2 priority classes, some caps."""
    links = [
        Link(src=f"t{i}", dst="core", capacity=gbps(100), name=f"up{i}")
        for i in range(4)
    ] + [
        Link(src="core", dst=f"t{i}", capacity=gbps(100), name=f"down{i}")
        for i in range(4)
    ]
    flows = []
    for i in range(40):
        up = links[i % 4]
        down = links[4 + (i * 7) % 4]
        flows.append(
            Flow(
                flow_id=f"f{i}",
                src=up.src,
                dst=down.dst,
                links=[up, down],
                weight=1.0 + (i % 3),
                priority=i % 2,
                rate_cap=gbps(40) if i % 5 == 0 else None,
            )
        )
    return flows


def test_fluid_allocator(benchmark):
    """Allocation stays max-min feasible; timing tracked in the JSON."""
    flows = _workload()
    allocator = FluidAllocator()
    allocation = benchmark(allocator.allocate, flows)
    # Work-conservation sanity: every flow got a positive rate and no
    # link is oversubscribed (allocate() itself asserts the latter).
    assert all(rate > 0 for rate in allocation.rates.values())
    assert len(allocation.rates) == len(flows)
    loads = [
        f"{link.name}: {allocation.utilization(link):.3f}"
        for link in sorted(allocation.link_loads, key=lambda l: l.name)
    ]
    print_report("fluid allocator — link utilization", "\n".join(loads))


def _fabric_workload():
    """64 six-hop flows over a k=4 fat tree (96 directed fabric links)."""
    from repro.net.routing import EcmpRouter
    from repro.net.topology import Topology

    topo = Topology.fat_tree(4, host_capacity=gbps(100))
    router = EcmpRouter(topo)
    hosts = [node.name for node in topo.hosts()]
    flows = []
    for i in range(64):
        src = hosts[i % len(hosts)]
        dst = hosts[(i * 5 + 3) % len(hosts)]
        if src == dst:
            dst = hosts[(i * 5 + 4) % len(hosts)]
        flows.append(
            Flow(
                flow_id=f"x{i}",
                src=src,
                dst=dst,
                links=list(router.route(src, dst, f"x{i}")),
                weight=1.0 + (i % 3),
                priority=i % 2,
            )
        )
    return flows


def test_fluid_allocator_fabric(benchmark):
    """Wide fat-tree incidence: feasible fill, cost tracked in the JSON."""
    flows = _fabric_workload()
    allocator = FluidAllocator()
    allocation = benchmark(allocator.allocate, flows)
    assert len(allocation.rates) == len(flows)
    assert all(rate > 0 for rate in allocation.rates.values())
    for link, load in allocation.link_loads.items():
        assert load <= link.capacity * (1 + 1e-9), link.name
    hops = sum(len(flow.links) for flow in flows) / len(flows)
    benchmark.extra_info["flows"] = len(flows)
    benchmark.extra_info["mean_hops"] = hops
    print_report(
        "fluid allocator — fat-tree fabric incidence",
        f"flows: {len(flows)}  mean hops: {hops:.2f}  "
        f"links touched: {len(allocation.link_loads)}",
    )
