"""E8 — §4(i): the adaptively-unfair congestion control.

Paper: scaling DCQCN's additive-increase step with communication-phase
progress creates the unfairness side effect automatically for compatible
jobs, while incompatible jobs "continue to take turns ... and end up
sharing the bandwidth fairly in steady state".
"""

from conftest import print_report

from repro.experiments import ablations


def test_adaptive_cc(benchmark):
    """Adaptive CC reaches solo speed for compatible, fair for not."""
    results = benchmark.pedantic(
        ablations.adaptive_cc_experiment,
        kwargs={"n_iterations": 50, "skip": 20},
        iterations=1,
        rounds=1,
    )
    print_report("S4(i) — adaptively-unfair congestion control",
                 ablations.adaptive_cc_report(results))
    by_name = {r.group_name: r for r in results}
    compatible, incompatible = by_name["group2"], by_name["group1"]
    # Compatible group: all members materially faster than fair sharing.
    assert all(s > 1.15 for s in compatible.speedups.values())
    # Incompatible group: nobody materially hurt vs fair sharing.
    assert incompatible.worst_regression > 0.97
