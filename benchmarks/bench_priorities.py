"""E9 — §4(ii): switch priority queues mimic unfairness.

Paper: assigning each compatible job a *unique* priority lets the switch
divide bandwidth without any congestion-control change; the values can be
arbitrary as long as they are unique on the link.
"""

import pytest
from conftest import print_report

from repro.cc.fair import FairSharing
from repro.experiments.common import run_jobs
from repro.analysis.report import ascii_table
from repro.mechanisms.priorities import PriorityAssigner
from repro.workloads.profiles import EFFECTIVE_BOTTLENECK, table1_groups


def _run_comparison(n_iterations=50, skip=15):
    group = table1_groups()[4]  # compatible triple
    specs = group.specs
    job_ids = [s.job_id for s in specs]
    fair = run_jobs(specs, FairSharing(), n_iterations=n_iterations)
    assignment = PriorityAssigner(n_queues=8).assign(job_ids)
    prio = run_jobs(specs, assignment.policy(), n_iterations=n_iterations)
    rows = []
    for spec in specs:
        solo_ms = spec.solo_iteration_time(EFFECTIVE_BOTTLENECK) * 1e3
        fair_ms = fair.mean_iteration_time(spec.job_id, skip=skip) * 1e3
        prio_ms = prio.mean_iteration_time(spec.job_id, skip=skip) * 1e3
        rows.append((spec.job_id, fair_ms, prio_ms, solo_ms))
    return assignment, rows


def test_priority_queues(benchmark):
    """Unique priorities bring every compatible job to solo speed."""
    assignment, rows = benchmark.pedantic(
        _run_comparison, iterations=1, rounds=1
    )
    print_report(
        "S4(ii) — per-job switch priorities on a compatible group",
        ascii_table(
            ["job", "fair ms", "priorities ms", "solo ms"],
            [
                (job, f"{fair:.0f}", f"{prio:.0f}", f"{solo:.0f}")
                for job, fair, prio, solo in rows
            ],
        ),
    )
    assert assignment.overflowed == []
    for job, fair_ms, prio_ms, solo_ms in rows:
        assert prio_ms <= fair_ms + 1e-6, job
        assert prio_ms == pytest.approx(solo_ms, rel=0.02), job


def test_priority_queue_budget(benchmark):
    """The paper's caveat: too many jobs for the hardware queues."""
    def assign_many():
        return PriorityAssigner(n_queues=4).assign(
            [f"job{i}" for i in range(7)]
        )

    assignment = benchmark.pedantic(assign_many, iterations=1, rounds=10)
    print_report(
        "S4(ii) — queue-budget overflow",
        f"7 jobs on 4 queues: overflowed = {assignment.overflowed}",
    )
    assert len(assignment.overflowed) == 4
