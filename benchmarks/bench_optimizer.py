"""E12 — ablations on the optimization formulation.

(a) Sector-count sensitivity: the paper discretizes the circle into
sectors "for scalability"; a grid that is too coarse misses feasible
rotations. (b) Solver comparison: exact DFS vs greedy vs annealing vs
the discretized grid on instances with known ground truth.
"""

from conftest import print_report

from repro.analysis.report import ascii_table
from repro.experiments import ablations


def test_sector_sensitivity(benchmark):
    """How fine must the sector grid be to find a tight packing?"""
    points = benchmark.pedantic(
        ablations.sector_sensitivity, iterations=1, rounds=1
    )
    print_report(
        "Sector-count sensitivity (tight 95/100 triple)",
        ascii_table(
            ["sectors/job", "found", "residual overlap", "evaluations"],
            [
                (p.steps_per_job, "yes" if p.found else "no", p.overlap,
                 p.evaluations)
                for p in points
            ],
        ),
    )
    assert not points[0].found     # coarse grid misses
    assert points[-1].found        # fine grid finds


def test_solver_comparison(benchmark):
    """Exact vs heuristic solvers on known-ground-truth instances."""
    runs = benchmark.pedantic(
        ablations.solver_comparison, iterations=1, rounds=1
    )
    print_report("Solver comparison", ablations.solver_report(runs))
    for run in runs:
        if run.instance == "overloaded (infeasible)":
            assert not run.found, run.solver
        if run.solver == "backtracking" and "feasible" in run.instance and (
            "infeasible" not in run.instance
        ):
            assert run.found, run.instance
