"""E5 — Figure 4: rotate the circles to avoid congestion.

Paper: two equal-period jobs whose communication arcs collide at rotation
zero become fully compatible after rotating one circle.
"""

from conftest import print_report

from repro.experiments import figure4


def test_figure4_rotation(benchmark):
    """Fig. 4 — collision at zero, zero overlap after rotation."""
    result = benchmark.pedantic(figure4.run, iterations=1, rounds=5)
    print_report("Figure 4 — rotation separates the arcs", result.report())
    assert result.overlap_at_zero > 0
    assert result.result.compatible
    assert result.result.overlap_ticks == 0
