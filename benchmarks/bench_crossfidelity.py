"""E13 — cross-fidelity validation of the phase-level abstraction.

Runs the Figure 1 VGG19 pair as on-off traffic driven by the raw DCQCN
state machine (microsecond steps, stochastic ECN marking, the actual
``T = 125 -> 100 µs`` skew) and checks the phase-level prediction: both
jobs' mean iteration times improve under the skew. Measured speedups land
at ~1.25-1.28×, bracketing the paper's 1.23×.
"""

from conftest import print_report

from repro.experiments import crossfidelity


def test_crossfidelity(benchmark):
    """Fine-grained DCQCN reproduces the unfairness payoff."""
    result = benchmark.pedantic(
        crossfidelity.run,
        kwargs={"duration": 3.0},
        iterations=1,
        rounds=1,
    )
    print_report(
        "Cross-fidelity: raw DCQCN state machine vs phase-level model",
        result.report(),
    )
    for job in ("J1", "J2"):
        assert result.speedup(job) > 1.1, job
