"""E13 — online service: incremental engine speedup + sustained load.

Two pins for ROADMAP item 3:

* The incremental compatibility engine answers arrival/departure events
  at least 5x faster than re-solving the cluster from scratch, on a
  1000-job cluster of 500 two-job link components (the regime the
  per-component cache is built for: each event touches one component,
  the other 499 are cache hits).
* The event-driven service sustains four-digit concurrency: a Poisson
  day with fixed 30000 s lifetimes holds >= 1000 concurrent jobs on a
  256-rack fabric, and the bench records jobs admitted per simulated
  day as the throughput figure CI tracks.
"""

import time

import pytest
from conftest import print_report

from repro.core.cluster_compat import ClusterCompatibilityProblem
from repro.core.compatibility import CompatibilityChecker
from repro.core.incremental import IncrementalCompatibilityEngine
from repro.net.topology import Topology
from repro.scheduler.cluster import ClusterState
from repro.scheduler.placement import ConsolidatedPlacement
from repro.scheduler.service import ClusterService
from repro.units import gbps, ms
from repro.workloads.job import JobSpec
from repro.workloads.traces import (
    DEFAULT_PERIOD_GRID_MS,
    poisson_arrivals,
)

CAP = gbps(42)

#: Jobs in the engine-speedup cluster (two jobs per link).
N_JOBS = 1000
#: Arrival/departure events timed against both solvers.
N_EVENTS = 6
#: Required advantage of the incremental path.
MIN_SPEEDUP = 5.0


def _population(n_jobs=N_JOBS):
    """Deterministic job population: two jobs per link, all compatible.

    Periods cycle the whole-ms grid; comm phases stay under half the
    period so every pair fits, which keeps the from-scratch baseline on
    its fast path (DFS, no annealing) — the honest comparison.
    """
    checker = CompatibilityChecker(capacity=CAP)
    circles, links = {}, {}
    for index in range(n_jobs):
        # Both jobs of a link pair share a period; comm stays under half
        # of it, so every pair is feasible and the from-scratch baseline
        # stays on its fast path (DFS, no annealing) — the honest
        # comparison.
        period = DEFAULT_PERIOD_GRID_MS[
            (index // 2) % len(DEFAULT_PERIOD_GRID_MS)
        ]
        comm = period // 4 + (index % 3)
        spec = JobSpec(
            job_id=f"j{index:04d}",
            compute_time=ms(period - comm),
            comm_bytes=ms(comm) * CAP,
            n_workers=2,
        )
        job_id = spec.job_id
        circles[job_id] = checker.circle(spec)
        links[job_id] = [f"L{index // 2}"]
    return checker, circles, links


def _scratch_solve(circles, links):
    problem = ClusterCompatibilityProblem.from_assignments(
        list(circles.values()), {j: links[j] for j in circles}
    )
    return problem.solve(seed=0)


def test_incremental_engine_speedup(benchmark):
    """Event handling beats from-scratch re-solving by >= 5x."""
    checker, circles, links = _population()
    engine = IncrementalCompatibilityEngine(checker=checker)
    for job_id in circles:
        engine.add(circles[job_id], links[job_id])
    engine.solve()  # warm the per-component cache

    # The same event sequence (depart + re-arrive across the cluster),
    # answered by each solver.
    victims = [f"j{index * 97 % N_JOBS:04d}" for index in range(N_EVENTS)]

    start = time.perf_counter()
    for job_id in victims:
        engine.remove(job_id)
        engine.solve()
        engine.add(circles[job_id], links[job_id])
        engine.solve()
    incremental_s = time.perf_counter() - start

    def scratch_events():
        for job_id in victims:
            removed = {j: c for j, c in circles.items() if j != job_id}
            _scratch_solve(removed, links)
            _scratch_solve(circles, links)

    start = time.perf_counter()
    scratch_events()
    scratch_s = time.perf_counter() - start

    speedup = scratch_s / incremental_s
    stats = engine.stats()
    benchmark.extra_info["jobs"] = N_JOBS
    benchmark.extra_info["events"] = N_EVENTS
    benchmark.extra_info["incremental_s"] = round(incremental_s, 4)
    benchmark.extra_info["scratch_s"] = round(scratch_s, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["component_cache_hits"] = stats[
        "component_cache_hits"
    ]
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    print_report(
        "online engine — incremental vs from-scratch",
        f"{N_JOBS} jobs, {N_EVENTS} depart+arrive events: "
        f"incremental {incremental_s * 1e3:.1f} ms, "
        f"from-scratch {scratch_s * 1e3:.1f} ms, "
        f"speedup {speedup:.1f}x "
        f"(cache hits {stats['component_cache_hits']})",
    )
    assert engine.cluster_compatible
    assert speedup >= MIN_SPEEDUP


def test_service_sustains_thousand_jobs(benchmark):
    """A simulated day at >= 1000 concurrent jobs, throughput recorded."""
    topology = Topology.leaf_spine(
        n_racks=256,
        hosts_per_rack=4,
        host_capacity=CAP,
    )
    arrivals = poisson_arrivals(
        2200,
        seed=42,
        mean_interarrival_s=25.0,
        mean_lifetime_s=30000.0,
        lifetime_model="fixed",
        capacity=CAP,
    )

    def run_day():
        cluster = ClusterState(topology, gpus_per_host=8)
        service = ClusterService(
            cluster,
            ConsolidatedPlacement(),
            checker=CompatibilityChecker(capacity=CAP),
            queue_limit=64,
        )
        service.submit_all(arrivals)
        return service.run()

    stats = benchmark.pedantic(run_day, iterations=1, rounds=1)
    benchmark.extra_info["peak_concurrent"] = stats.peak_concurrent
    benchmark.extra_info["admitted"] = stats.admitted
    benchmark.extra_info["admitted_per_day"] = round(
        stats.admitted_per_day, 1
    )
    benchmark.extra_info["admission_rate"] = round(
        stats.admission_rate, 4
    )
    print_report(
        "online service — sustained load",
        f"peak {stats.peak_concurrent} concurrent jobs, "
        f"{stats.admitted}/{stats.submitted} admitted, "
        f"{stats.admitted_per_day:.0f} jobs/simulated-day "
        f"over a {stats.horizon / 3600:.1f} h horizon",
    )
    assert stats.peak_concurrent >= 1000
    assert stats.admitted_per_day >= 1000
    assert stats.admission_rate == pytest.approx(1.0, abs=0.05)
