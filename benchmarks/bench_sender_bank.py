"""Perf guard: vectorized DCQCN sender bank vs the scalar reference.

Runs the paper's two-job on-off workload (Figure 1's shape) through
``DcqcnFluidSimulator`` with both engines, asserts the traces and
timelines are identical, and guards the speedup the vector engine
(span advancement + idle fast-forward, see docs/PERF.md) must deliver.
CI runs this as its perf smoke leg and fails on any divergence.
"""

import time

import numpy as np

from conftest import print_report

from repro.cc.dcqcn import (
    DEFAULT_TIMER,
    DcqcnFluidSimulator,
    DcqcnParams,
    OnOffDcqcnJob,
)
from repro.units import gbps

#: Wall-clock factor engine="vector" must beat engine="scalar" by on the
#: two-job on-off workload (measured ~4.5x; margin absorbs CI noise).
MIN_SPEEDUP = 3.0

_DURATION = 1.2


def _run(engine: str):
    sim = DcqcnFluidSimulator(capacity=gbps(50), dt=10e-6, engine=engine)
    params = DcqcnParams(line_rate=gbps(50))
    jobs = []
    for index in range(2):
        job = OnOffDcqcnJob(
            f"J{index + 1}",
            params.with_timer(DEFAULT_TIMER * 2),
            np.random.default_rng(10 + index),
            compute_time=0.1,
            comm_bytes=0.11 * gbps(42),
            start_offset=index * 0.004,
        )
        sim.add_source(job)
        jobs.append(job)
    start = time.perf_counter()
    result = sim.run(_DURATION)
    elapsed = time.perf_counter() - start
    return result, jobs, elapsed


def test_sender_bank_speedup(benchmark):
    """Vector engine is bit-identical to scalar and >= MIN_SPEEDUP faster."""
    scalar_time = min(_run("scalar")[2] for _ in range(2))
    result_s, jobs_s, _ = _run("scalar")

    result_v, jobs_v, first = _run("vector")
    vector_time = min(first, _run("vector")[2])
    benchmark.pedantic(
        lambda: _run("vector"), iterations=1, rounds=1
    )

    # Divergence check: every sampled series and every timeline must be
    # byte-identical across engines — this is what CI fails on.
    for name in result_s.rate_series:
        assert np.array_equal(
            result_s.rate_series[name].times,
            result_v.rate_series[name].times,
        ), name
        assert np.array_equal(
            result_s.rate_series[name].values,
            result_v.rate_series[name].values,
        ), name
    assert np.array_equal(
        result_s.queue_series.values, result_v.queue_series.values
    )
    for job_s, job_v in zip(jobs_s, jobs_v):
        assert repr(job_s.timeline.__dict__) == repr(job_v.timeline.__dict__)

    speedup = scalar_time / vector_time
    benchmark.extra_info["scalar_seconds"] = scalar_time
    benchmark.extra_info["vector_seconds"] = vector_time
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["engines_identical"] = True
    print_report(
        "DCQCN sender bank — vector vs scalar",
        f"scalar: {scalar_time:.3f}s\n"
        f"vector: {vector_time:.3f}s\n"
        f"speedup: {speedup:.2f}x (floor {MIN_SPEEDUP}x)",
    )
    assert speedup >= MIN_SPEEDUP
