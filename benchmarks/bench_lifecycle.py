"""Lifecycle-core throughput: the phase backend before/after the refactor.

The unified job-lifecycle core (`repro.core.lifecycle`) replaced four
per-tier lifecycle implementations. This benchmark pins the cost of that
indirection on the hottest path — the phase-level simulator driving the
Figure 2 VGG19 pair with compute jitter for 400 iterations per job — and
guards against regressing more than 5% below the pre-refactor baseline.

Raw wall-clock is too load-sensitive for a hard guard, so each round is
normalized by an interpreter-speed calibration spin run immediately
before it: ambient machine load slows the spin and the simulator alike,
while a real slowdown on the simulator path moves only the simulator
number. The guarded metric is the best per-round ratio — simulated
iterations per kop (1000 bytecode operations) of interpreter
throughput. If the first batch of rounds still lands below the floor
(a sustained load burst), one extra batch runs before failing.
"""

import time

from conftest import print_report

from repro.cc.weighted import StaticWeighted
from repro.experiments.common import run_jobs
from repro.workloads.profiles import figure2_vgg19_pair

#: Iterations per job of the measured workload.
N_ITERATIONS = 400

#: Measurement rounds per batch; each is one calibration spin + one run.
ROUNDS = 12

#: Simulated iterations per kop of interpreter work for the
#: PRE-refactor phase backend (commit 62ea351), measured with this exact
#: protocol (best per-round ratio of 12 calibrated rounds) interleaved
#: against the refactored code: 0.411/0.409/0.415 across three runs.
#: The refactored code measured 0.394-0.424 in the same interleaving —
#: parity within measurement noise (~1% mean regression).
BASELINE_ITERATIONS_PER_KOP = 0.41

#: Largest tolerated slowdown vs the pre-refactor baseline.
MAX_REGRESSION = 0.05

#: Interpreter-bound spin size; ~60 ms of pure bytecode dispatch.
_CALIBRATION_OPS = 2_000_000

#: Per-round interpreter speeds (ops/s), appended by the setup hook.
_calibrations = []


def _calibrate():
    """Spin the interpreter right before a round; record its speed."""
    t0 = time.perf_counter()
    x = 0
    for i in range(_CALIBRATION_OPS):
        x += i & 7
    _calibrations.append(_CALIBRATION_OPS / (time.perf_counter() - t0))


def _run():
    j1, j2 = figure2_vgg19_pair(jitter=0.02)
    return run_jobs(
        [j1, j2],
        StaticWeighted.from_aggressiveness_order([j1.job_id, j2.job_id]),
        n_iterations=N_ITERATIONS,
        seed=0,
    )


def _ratios(walls, ops_per_s_list, total_iterations):
    return [
        (total_iterations / wall) / ops_per_s * 1e3
        for wall, ops_per_s in zip(walls, ops_per_s_list)
    ]


def _extra_batch(total_iterations):
    """One manually timed batch (``pedantic`` only runs once per test)."""
    _calibrations.clear()
    walls = []
    for _ in range(ROUNDS):
        _calibrate()
        t0 = time.perf_counter()
        _run()
        walls.append(time.perf_counter() - t0)
    return _ratios(walls, _calibrations, total_iterations)


def test_phase_backend_throughput(benchmark):
    """Normalized phase-backend throughput stays within 5% of baseline."""
    _run()  # warm imports and numpy internals outside the rounds
    _calibrations.clear()
    result = benchmark.pedantic(
        _run, setup=_calibrate, iterations=1, rounds=ROUNDS
    )
    total_iterations = sum(
        len(timeline) for timeline in result.timelines().values()
    )
    assert total_iterations == 2 * N_ITERATIONS
    walls = benchmark.stats.stats.data
    assert len(walls) == len(_calibrations) == ROUNDS
    ratios = _ratios(walls, _calibrations, total_iterations)
    floor = BASELINE_ITERATIONS_PER_KOP * (1 - MAX_REGRESSION)
    retried = False
    if max(ratios) < floor:
        retried = True
        ratios += _extra_batch(total_iterations)
    best = max(ratios)
    print_report(
        "Lifecycle core — phase-backend throughput",
        f"{total_iterations} iterations in {min(walls):.4f} s "
        f"(best of {ROUNDS})\n"
        f"throughput: {total_iterations / min(walls):,.0f} iterations/s\n"
        f"normalized: {best:.3f} iterations per kop of interpreter work"
        f"{' (after retry batch)' if retried else ''}\n"
        f"pre-refactor baseline: {BASELINE_ITERATIONS_PER_KOP:.3f} "
        f"(floor at -5%: {floor:.3f})",
    )
    assert best >= floor, (
        f"phase backend regressed: {best:.3f} iterations per kop is more "
        f"than 5% below the {BASELINE_ITERATIONS_PER_KOP:.3f} baseline"
    )
