"""E14 — the paper's §5 discussion directions, made concrete.

* Cluster-level compatibility: one rotation per job must satisfy every
  link it crosses; jobs that never share a link may overlap.
* GPU multi-tenancy analogue: fractional link demands relax the
  one-job-per-sector constraint.
* Hyper-parameter tuning: a small batch change restores compatibility.
"""

from conftest import print_report

from repro.experiments import extensions


def test_cluster_level_compatibility(benchmark):
    """Infeasible-on-one-link jobs schedule cleanly across a path."""
    result = benchmark.pedantic(
        extensions.cluster_level_experiment, iterations=1, rounds=3
    )
    print_report("S5 — cluster-level compatibility", result.report())
    assert not result.single_link_compatible
    assert result.cluster.compatible
    assert result.cluster.violated_links == []


def test_fractional_demands(benchmark):
    """Half-rate jobs may overlap; full-rate ones may not."""
    result = benchmark.pedantic(
        extensions.multi_tenancy_experiment, iterations=1, rounds=3
    )
    print_report("S5 — fractional demands", result.report())
    assert not result.full_demand_compatible
    assert result.half_demand_compatible


def test_hyperparameter_tuning(benchmark):
    """A ~10% batch bump turns the VGG19 pair compatible."""
    result = benchmark.pedantic(
        extensions.tuning_experiment, iterations=1, rounds=1
    )
    print_report("S5 — hyper-parameter tuning", result.report())
    assert not result.before_compatible
    assert result.suggestion is not None
    assert result.suggestion.total_adjustment <= 0.25
