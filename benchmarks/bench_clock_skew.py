"""E15 — §4(iii)'s caveat: flow scheduling needs synchronized clocks.

Paper: "it is challenging to schedule short transfers at precise times
without a high-resolution clock synchronization across the cluster."
This sweep quantifies the claim: per-job clock offsets shift the
communication windows, and a job that just misses its window stalls for
most of a unified period.
"""

from conftest import print_report

from repro.experiments import ablations


def test_clock_skew_sensitivity(benchmark):
    """Zero skew is perfect; any skew costs; large skew costs a lot."""
    points = benchmark.pedantic(
        ablations.clock_skew_experiment, iterations=1, rounds=1
    )
    print_report(
        "S4(iii) — flow scheduling vs clock skew",
        ablations.clock_skew_report(points),
    )
    by_skew = {p.skew_ms: p for p in points}
    assert abs(by_skew[0.0].mean_slowdown - 1.0) < 1e-6
    assert all(
        p.mean_slowdown > 1.01 for p in points if p.skew_ms > 0
    )
    assert by_skew[20.0].mean_slowdown > 1.2
