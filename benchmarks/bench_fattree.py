"""Perf guard: multi-link fabric vector engine vs the scalar reference.

Runs the fat-tree rotation workload (three DCQCN jobs on converging
six-hop routes, see :mod:`repro.experiments.fattree`) through
``DcqcnFluidSimulator`` with both fabric engines, asserts every rate
series, per-link queue series and iteration timeline is identical, and
guards the speedup the vectorized ``LinkSenderBank`` must deliver over
the dt-by-dt scalar fabric loop. CI runs this as the fat-tree smoke leg
and fails on any divergence.
"""

import time

import numpy as np

from conftest import print_report

from repro.cc.dcqcn import (
    DEFAULT_TIMER,
    DcqcnFluidSimulator,
    DcqcnParams,
    OnOffDcqcnJob,
)
from repro.experiments.fattree import FAT_TREE_K, ROTATION_ROUTES
from repro.net.topology import Topology
from repro.units import gbps

#: Wall-clock factor the vector fabric engine must beat the scalar
#: fabric loop by on the three-job rotation workload (measured ~2.1x;
#: margin absorbs CI noise).
MIN_SPEEDUP = 1.4

_DURATION = 0.6
_CAPACITY = gbps(50)


def _run(engine: str):
    sim = DcqcnFluidSimulator(
        capacity=_CAPACITY,
        dt=10e-6,
        engine=engine,
        topology=Topology.fat_tree(FAT_TREE_K, host_capacity=_CAPACITY),
    )
    params = DcqcnParams(line_rate=_CAPACITY)
    jobs = []
    for index, name in enumerate(sorted(ROTATION_ROUTES)):
        job = OnOffDcqcnJob(
            name,
            params.with_timer(DEFAULT_TIMER * 2),
            np.random.default_rng(20 + index),
            compute_time=0.0016,
            comm_bytes=0.0007 * _CAPACITY,
            start_offset=index * 0.0004,
        )
        sim.add_source(job, route=ROTATION_ROUTES[name])
        jobs.append(job)
    start = time.perf_counter()
    result = sim.run(_DURATION)
    elapsed = time.perf_counter() - start
    return result, jobs, elapsed


def test_fattree_fabric_speedup(benchmark):
    """Vector fabric engine is bit-identical to scalar and faster."""
    scalar_time = min(_run("scalar")[2] for _ in range(2))
    result_s, jobs_s, _ = _run("scalar")

    result_v, jobs_v, first = _run("vector")
    vector_time = min(first, _run("vector")[2])
    benchmark.pedantic(
        lambda: _run("vector"), iterations=1, rounds=1
    )

    # Divergence check: every sampled series — per sender and per fabric
    # link — and every timeline must be byte-identical across engines.
    for name in result_s.rate_series:
        assert np.array_equal(
            result_s.rate_series[name].times,
            result_v.rate_series[name].times,
        ), name
        assert np.array_equal(
            result_s.rate_series[name].values,
            result_v.rate_series[name].values,
        ), name
    assert set(result_s.link_queue_series) == set(
        result_v.link_queue_series
    )
    for name in result_s.link_queue_series:
        assert np.array_equal(
            result_s.link_queue_series[name].values,
            result_v.link_queue_series[name].values,
        ), name
    for job_s, job_v in zip(jobs_s, jobs_v):
        assert repr(job_s.timeline.__dict__) == repr(job_v.timeline.__dict__)

    speedup = scalar_time / vector_time
    benchmark.extra_info["scalar_seconds"] = scalar_time
    benchmark.extra_info["vector_seconds"] = vector_time
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["engines_identical"] = True
    benchmark.extra_info["fabric_links"] = len(result_s.link_queue_series)
    print_report(
        "fat-tree fabric — vector vs scalar",
        f"scalar: {scalar_time:.3f}s\n"
        f"vector: {vector_time:.3f}s\n"
        f"speedup: {speedup:.2f}x (floor {MIN_SPEEDUP}x)\n"
        f"fabric links with queue series: "
        f"{len(result_s.link_queue_series)}",
    )
    assert speedup >= MIN_SPEEDUP
