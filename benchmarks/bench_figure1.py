"""E1 + E2 — Figure 1: the surprising payoff of unfairness.

E1 (Fig. 1b/1c): fine-grained DCQCN, fair (T=125 µs both) vs unfair
(T=100 µs for J1) bandwidth split on the 50 Gbps bottleneck.
Paper: ~21/21 Gbps fair, ~30/15 Gbps unfair.

E2 (Fig. 1d): CDF of iteration times over many iterations, fair vs
2:1-weighted unfair. Paper: both jobs' median iteration time improves
by 1.23x.
"""

from conftest import print_report

from repro.experiments import figure1


def test_figure1_bandwidth(benchmark):
    """Fig. 1b/1c — DCQCN bandwidth shares under a timer skew."""
    result = benchmark.pedantic(
        figure1.bandwidth_experiment,
        kwargs={"duration": 0.15},
        iterations=1,
        rounds=3,
    )
    print_report("Figure 1b/1c — DCQCN bandwidth at the bottleneck",
                 result.table())
    assert result.unfair_gbps["J1"] > result.unfair_gbps["J2"]


def test_figure1_cdf(benchmark):
    """Fig. 1d — iteration-time CDFs over 1,000 iterations."""
    result = benchmark.pedantic(
        figure1.cdf_experiment,
        kwargs={"n_iterations": 1000},
        iterations=1,
        rounds=1,
    )
    print_report("Figure 1d — CDF of training iteration times",
                 result.report())
    for job in result.run.job_ids:
        assert result.median_speedup(job) > 1.0
