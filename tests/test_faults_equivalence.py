"""Cross-engine bit-equivalence of the fluid tiers *under* injection.

PR 4/5 pinned the vector engines as bit-identical to the scalar
reference on clean runs. Fault windows add three new code paths —
normal windows at a scaled capacity, freeze spans and storm spans, plus
the span fast-forward truncating at every window boundary — and each
must preserve the guarantee: same sampled series, same timelines, and
the same number of random draws (so downstream randomness is unshifted).
"""

import numpy as np
import pytest

from repro.cc.aimd import AimdFluidSimulator, AimdParams, OnOffAimdJob
from repro.cc.dcqcn import (
    AGGRESSIVE_TIMER,
    DEFAULT_TIMER,
    DcqcnFluidSimulator,
    DcqcnParams,
    OnOffDcqcnJob,
)
from repro.faults import (
    ClockSkew,
    InjectionSchedule,
    LatencySpike,
    LinkFailure,
    PfcStorm,
    RateChange,
    Straggler,
)
from repro.units import gbps, mbps

#: Mid-run perturbations exercising every window mode, with boundaries
#: deliberately off the sample grid so span truncation is stressed.
SCHEDULES = {
    "rate-spike": InjectionSchedule(events=(
        RateChange("L1", 0.0052, 0.0095, 0.35),
        RateChange("L1", 0.0214, 0.0289, 1.6),
    )),
    "link-failure": InjectionSchedule(events=(
        LinkFailure("L1", 0.0111, 0.0183),
    )),
    "pfc-storm": InjectionSchedule(events=(
        PfcStorm("L1", 0.0077, 0.0121),
    )),
    "job-warps": InjectionSchedule(events=(
        Straggler("J1", 0.0, 0.02, 1.7),
        ClockSkew("J2", 0.01, 0.03, 0.0004),
        LatencySpike("L1", 0.02, 0.04, 0.0003),
    )),
    "everything": InjectionSchedule(events=(
        RateChange("L1", 0.004, 0.008, 0.5),
        PfcStorm("L1", 0.012, 0.015),
        LinkFailure("L1", 0.02, 0.024),
        Straggler("J2", 0.0, 0.05, 1.3),
    ), horizon=0.06),
}


def _series_equal(left, right):
    assert set(left.rate_series) == set(right.rate_series)
    for name, series in left.rate_series.items():
        other = right.rate_series[name]
        assert np.array_equal(series.times, other.times), name
        assert np.array_equal(series.values, other.values), name
    # The DCQCN tier also samples the bottleneck queue; AIMD does not.
    if hasattr(left, "queue_series"):
        assert np.array_equal(
            left.queue_series.times, right.queue_series.times
        )
        assert np.array_equal(
            left.queue_series.values, right.queue_series.values
        )


def _dcqcn(engine, faults):
    sim = DcqcnFluidSimulator(
        capacity=gbps(50), dt=10e-6, engine=engine, faults=faults
    )
    params = DcqcnParams(line_rate=gbps(50))
    jobs, rngs = [], []
    for index, timer in enumerate(
        (AGGRESSIVE_TIMER, DEFAULT_TIMER, DEFAULT_TIMER)
    ):
        rng = np.random.default_rng(40 + index)
        job = OnOffDcqcnJob(
            f"J{index + 1}",
            params.with_timer(timer),
            rng,
            compute_time=0.0011,
            comm_bytes=0.0013 * gbps(50),
            start_offset=index * 0.0003,
        )
        sim.add_source(job)
        jobs.append(job)
        rngs.append(rng)
    return sim, jobs, rngs


def _aimd(engine, faults):
    sim = AimdFluidSimulator(
        capacity=mbps(400), dt=1e-3, sample_interval=5e-3,
        engine=engine, faults=faults,
    )
    jobs = []
    for index in range(3):
        # The AIMD tier is jitter-free: no RNG to track.
        jobs.append(sim.add_job(
            f"J{index + 1}",
            compute_time=0.11,
            comm_bytes=0.13 * mbps(400),
            start_offset=index * 0.03,
        ))
    return sim, jobs


class TestDcqcnFaultEquivalence:
    @pytest.mark.parametrize("name", sorted(SCHEDULES))
    def test_bit_identical_under_faults(self, name):
        faults = SCHEDULES[name]
        sim_s, jobs_s, rngs_s = _dcqcn("scalar", faults)
        sim_v, jobs_v, rngs_v = _dcqcn("vector", faults)
        result_s = sim_s.run(0.05)
        result_v = sim_v.run(0.05)
        _series_equal(result_s, result_v)
        for job_s, job_v in zip(jobs_s, jobs_v):
            assert (
                repr(job_s.timeline.__dict__)
                == repr(job_v.timeline.__dict__)
            )
        # Same number of random draws: the generators must sit at the
        # same stream position after the run.
        for rng_s, rng_v in zip(rngs_s, rngs_v):
            assert (
                rng_s.bit_generator.state == rng_v.bit_generator.state
            )

    def test_pfc_pause_counter_matches(self):
        faults = SCHEDULES["pfc-storm"]
        sim_s, _, _ = _dcqcn("scalar", faults)
        sim_v, _, _ = _dcqcn("vector", faults)
        sim_s.run(0.05)
        sim_v.run(0.05)
        # The storm forcibly accrues pause time in both engines.
        assert sim_s.pfc_pause_seconds > 0.0
        assert sim_s.pfc_pause_seconds == sim_v.pfc_pause_seconds

    def test_capacity_restored_after_run(self):
        faults = SCHEDULES["everything"]
        for engine in ("scalar", "vector"):
            sim, _, _ = _dcqcn(engine, faults)
            base = sim.capacity
            sim.run(0.05)
            assert sim.capacity == base
            assert sim.queue.capacity == base


class TestAimdFaultEquivalence:
    @pytest.mark.parametrize(
        "name", ["rate-spike", "link-failure", "pfc-storm", "job-warps"]
    )
    def test_bit_identical_under_faults(self, name):
        faults = SCHEDULES[name]
        sim_s, jobs_s = _aimd("scalar", faults)
        sim_v, jobs_v = _aimd("vector", faults)
        result_s = sim_s.run(4.0)
        result_v = sim_v.run(4.0)
        _series_equal(result_s, result_v)
        for job_s, job_v in zip(jobs_s, jobs_v):
            assert (
                repr(job_s.timeline.__dict__)
                == repr(job_v.timeline.__dict__)
            )


class TestFaultedVsCleanDiffer:
    """Sanity: the perturbations actually change the dynamics."""

    def test_dcqcn_faulted_run_differs_from_clean(self):
        sim_clean, jobs_clean, _ = _dcqcn("vector", None)
        sim_fault, jobs_fault, _ = _dcqcn(
            "vector", SCHEDULES["everything"]
        )
        clean = sim_clean.run(0.05)
        faulted = sim_fault.run(0.05)
        assert not np.array_equal(
            clean.queue_series.values, faulted.queue_series.values
        )
