"""Fixture tests for every :mod:`repro.lint` rule.

Each rule gets at least one triggering and one non-triggering snippet,
linted through :func:`repro.lint.lint_source` against a virtual path so
scoping behaves exactly as it does on real files.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.errors import ConfigError
from repro.lint import (
    Baseline,
    Finding,
    Severity,
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
    select_rules,
)
from repro.lint.suppress import is_suppressed, suppressions


def lint(source: str, path: str = "repro/module.py", **kwargs):
    return lint_source(textwrap.dedent(source), path=path, **kwargs)


def codes(findings) -> list:
    return [finding.code for finding in findings]


# ---------------------------------------------------------------- DET001


class TestUnseededRandom:
    def test_stdlib_random_flagged(self):
        found = lint(
            """
            import random

            def draw():
                return random.random()
            """
        )
        assert codes(found) == ["DET001"]

    def test_stdlib_random_alias_flagged(self):
        found = lint(
            """
            import random as rnd

            x = rnd.randint(0, 5)
            """
        )
        assert codes(found) == ["DET001"]

    def test_numpy_legacy_global_flagged(self):
        found = lint(
            """
            import numpy as np

            noise = np.random.rand(10)
            """
        )
        assert codes(found) == ["DET001"]

    def test_unseeded_default_rng_flagged(self):
        found = lint(
            """
            import numpy as np

            rng = np.random.default_rng()
            """
        )
        assert codes(found) == ["DET001"]
        assert "entropy" in found[0].message

    def test_seeded_default_rng_clean(self):
        found = lint(
            """
            import numpy as np

            rng = np.random.default_rng(42)
            other = np.random.default_rng(seed=7)
            """
        )
        assert found == []

    def test_random_streams_clean(self):
        # Drawn inside a function: module-scope draws are DET004's beat.
        found = lint(
            """
            from repro.sim.rng import RandomStreams

            def build_flows_rng():
                return RandomStreams(0).get("flows")
            """
        )
        assert found == []

    def test_local_name_random_not_confused(self):
        # `random` here is a local callable, not the stdlib module.
        found = lint(
            """
            def run(random):
                return random()
            """
        )
        assert found == []


# ---------------------------------------------------------------- DET002


class TestWallClock:
    def test_time_time_flagged(self):
        found = lint(
            """
            import time

            start = time.time()
            """,
            path="repro/net/phasesim.py",
        )
        assert codes(found) == ["DET002"]

    def test_perf_counter_via_from_import_flagged(self):
        found = lint(
            """
            from time import perf_counter

            start = perf_counter()
            """,
            path="repro/runner/parallel.py",
        )
        assert codes(found) == ["DET002"]

    def test_datetime_now_flagged(self):
        found = lint(
            """
            import datetime

            stamp = datetime.datetime.now()
            """
        )
        assert codes(found) == ["DET002"]

    def test_telemetry_exempt(self):
        found = lint(
            """
            import time

            start = time.perf_counter()
            """,
            path="repro/telemetry/spans.py",
        )
        assert found == []

    def test_non_clock_time_function_clean(self):
        found = lint(
            """
            import time

            time.sleep(0.1)
            """
        )
        assert found == []


# ---------------------------------------------------------------- DET003


class TestSetIteration:
    def test_for_over_set_literal_flagged(self):
        found = lint(
            """
            for item in {1, 2, 3}:
                print(item)
            """,
            path="repro/net/links.py",
        )
        assert codes(found) == ["DET003"]

    def test_for_over_set_valued_name_flagged(self):
        found = lint(
            """
            def drain(events):
                pending = set(events)
                for event in pending:
                    handle(event)
            """,
            path="repro/sim/engine.py",
        )
        assert codes(found) == ["DET003"]

    def test_comprehension_over_set_flagged(self):
        found = lint(
            """
            names = [name for name in {"a", "b"}]
            """,
            path="repro/core/circle.py",
        )
        assert codes(found) == ["DET003"]

    def test_sorted_set_clean(self):
        found = lint(
            """
            def drain(events):
                pending = set(events)
                for event in sorted(pending):
                    handle(event)
            """,
            path="repro/net/links.py",
        )
        assert found == []

    def test_same_name_in_other_function_clean(self):
        # A set-valued `links` in one function must not flag the
        # parameter `links` of another (per-scope name tracking).
        found = lint(
            """
            def build():
                links = {object()}
                return sorted(links, key=id)

            def walk(links):
                for link in links:
                    visit(link)
            """,
            path="repro/core/topology.py",
        )
        assert found == []

    def test_out_of_scope_path_clean(self):
        found = lint(
            """
            for item in {1, 2, 3}:
                print(item)
            """,
            path="repro/workloads/generator.py",
        )
        assert found == []


# ---------------------------------------------------------------- UNIT001


class TestMagicUnitFactor:
    def test_inline_milli_factor_flagged(self):
        found = lint(
            """
            def to_seconds(ms):
                return ms * 1e-3
            """,
            path="repro/net/phasesim.py",
        )
        assert codes(found) == ["UNIT001"]
        assert found[0].severity is Severity.WARNING

    def test_inline_division_flagged(self):
        found = lint(
            """
            def to_ms(seconds):
                return seconds / 1e-3
            """,
            path="repro/workloads/models.py",
        )
        assert codes(found) == ["UNIT001"]

    def test_module_constant_exempt(self):
        found = lint(
            """
            TICKS_PER_SECOND = 1e6

            def to_ticks(seconds):
                return seconds * TICKS_PER_SECOND
            """,
            path="repro/sim/clock.py",
        )
        assert found == []

    def test_tolerance_addition_clean(self):
        # Only Mult/Div operands count: additive epsilons and
        # comparisons are not unit conversions.
        found = lint(
            """
            def close(a, b):
                return abs(a - b) < 1e-9

            def pad(x):
                return x + 1e-6
            """,
            path="repro/net/fluid.py",
        )
        assert found == []

    def test_units_helper_clean(self):
        found = lint(
            """
            from repro.units import milliseconds

            def to_seconds(ms):
                return milliseconds(ms)
            """,
            path="repro/net/phasesim.py",
        )
        assert found == []

    def test_out_of_scope_path_clean(self):
        found = lint(
            """
            x = 5 * 1e-3
            """,
            path="repro/telemetry/metrics.py",
        )
        assert found == []


# ---------------------------------------------------------------- FP001


class TestFloatEquality:
    def test_eq_float_literal_flagged(self):
        found = lint(
            """
            def check(rate):
                return rate == 1.0
            """,
            path="repro/core/circle.py",
        )
        assert codes(found) == ["FP001"]

    def test_noteq_float_literal_flagged(self):
        found = lint(
            """
            def changed(rate):
                return rate != 0.5
            """,
            path="repro/cc/dcqcn.py",
        )
        assert codes(found) == ["FP001"]

    def test_chained_comparison_flagged_once_per_op(self):
        found = lint(
            """
            def check(a, b):
                return a == 1.0 == b
            """,
            path="repro/core/circle.py",
        )
        assert codes(found) == ["FP001", "FP001"]

    def test_isclose_clean(self):
        found = lint(
            """
            from repro.floats import isclose

            def check(rate):
                return isclose(rate, 1.0)
            """,
            path="repro/core/circle.py",
        )
        assert found == []

    def test_int_literal_clean(self):
        found = lint(
            """
            def check(count):
                return count == 3
            """,
            path="repro/core/circle.py",
        )
        assert found == []

    def test_variable_comparison_clean(self):
        # Variable-vs-variable equality can be intentional (exact
        # dedup); only float literals are flagged.
        found = lint(
            """
            def same(a, b):
                return a == b
            """,
            path="repro/net/phasesim.py",
        )
        assert found == []

    def test_out_of_scope_path_clean(self):
        found = lint(
            """
            x = 1.0
            flag = x == 1.0
            """,
            path="repro/workloads/models.py",
        )
        assert found == []


# ------------------------------------------------------------- PICKLE001


class TestUnpicklableBackend:
    def test_lambda_backend_flagged(self):
        found = lint(
            """
            from repro.runner import backends

            backends.register("quick", lambda spec: None)
            """
        )
        assert codes(found) == ["PICKLE001"]

    def test_nested_class_backend_flagged(self):
        found = lint(
            """
            from repro.runner import backends

            def install():
                class Backend:
                    def execute(self, spec):
                        return None

                backends.register("nested", Backend())
            """
        )
        assert codes(found) == ["PICKLE001"]

    def test_backend_keyword_flagged(self):
        found = lint(
            """
            from repro.runner import backends

            def install():
                class Backend:
                    pass

                backends.register("nested", backend=Backend())
            """
        )
        assert codes(found) == ["PICKLE001"]

    def test_module_level_backend_clean(self):
        found = lint(
            """
            from repro.runner import backends

            class Backend:
                def execute(self, spec):
                    return None

            backends.register("good", Backend())
            """
        )
        assert found == []

    def test_unrelated_register_clean(self):
        # `register` on something that is not the runner registry.
        found = lint(
            """
            import atexit

            atexit.register(lambda: None)
            """
        )
        assert found == []


# ---------------------------------------------------------------- RUN001


class TestDirectSimulator:
    def test_direct_instantiation_flagged(self):
        found = lint(
            """
            from repro.net.phasesim import PhaseLevelSimulator

            def main():
                sim = PhaseLevelSimulator(topology, policy, seed=0)
                sim.run()
            """,
            path="repro/experiments/figure9.py",
        )
        assert codes(found) == ["RUN001"]

    def test_adapter_class_clean(self):
        found = lint(
            """
            from repro.net.phasesim import PhaseLevelSimulator

            class PhaseBackend:
                def execute(self, spec):
                    sim = PhaseLevelSimulator(spec.topo, spec.policy)
                    return sim.run()
            """,
            path="repro/experiments/figure9.py",
        )
        assert found == []

    def test_run_many_clean(self):
        found = lint(
            """
            from repro.runner import RunSpec, run_many

            def main():
                specs = [RunSpec(backend="phase", params={})]
                return run_many(specs)
            """,
            path="repro/experiments/figure9.py",
        )
        assert found == []

    def test_outside_experiments_clean(self):
        found = lint(
            """
            from repro.net.phasesim import PhaseLevelSimulator

            sim = PhaseLevelSimulator(topology, policy)
            """,
            path="repro/scheduler/simulation.py",
        )
        assert found == []


# ----------------------------------------------------------- suppression


class TestSuppressions:
    def test_inline_disable_one_code(self):
        found = lint(
            """
            import time

            start = time.time()  # simlint: disable=DET002 - benchmark only
            """,
            path="repro/net/bench.py",
        )
        assert found == []

    def test_inline_disable_wrong_code_still_flags(self):
        found = lint(
            """
            import time

            start = time.time()  # simlint: disable=UNIT001
            """,
            path="repro/net/bench.py",
        )
        assert codes(found) == ["DET002"]

    def test_bare_disable_suppresses_everything(self):
        found = lint(
            """
            import time

            start = time.time()  # simlint: disable
            """,
            path="repro/net/bench.py",
        )
        assert found == []

    def test_disable_multiple_codes(self):
        found = lint(
            """
            import time

            x = time.time() * 1e-3  # simlint: disable=DET002,UNIT001
            """,
            path="repro/net/bench.py",
        )
        assert found == []

    def test_marker_inside_string_ignored(self):
        # tokenize-based scan: the marker in a string literal is not a
        # comment, so the finding on the same line survives.
        found = lint(
            """
            import time

            msg = "# simlint: disable=DET002"
            start = time.time()
            """,
            path="repro/net/bench.py",
        )
        assert codes(found) == ["DET002"]

    def test_suppression_table(self):
        table = suppressions(
            "x = 1  # simlint: disable=DET002, UNIT001 (why)\n"
        )
        assert is_suppressed(table, 1, "DET002")
        assert is_suppressed(table, 1, "UNIT001")
        assert not is_suppressed(table, 1, "FP001")
        assert not is_suppressed(table, 2, "DET002")


# -------------------------------------------------------------- baseline


class TestBaseline:
    def _finding(self, line=3):
        return Finding(
            path="repro/net/x.py",
            line=line,
            col=0,
            code="DET002",
            message="wall-clock call",
            severity=Severity.ERROR,
            hint="",
        )

    def test_roundtrip_and_split(self, tmp_path):
        path = tmp_path / "baseline.json"
        old = self._finding()
        Baseline.write(path, [old])
        baseline = Baseline.load(path)
        fresh, baselined = baseline.split([old, self._finding(line=9)])
        assert [f.line for f in fresh] == [9]
        assert [f.line for f in baselined] == [3]

    def test_entries_consumed_one_for_one(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.write(path, [self._finding()])
        baseline = Baseline.load(path)
        # Two identical findings against one baseline entry: only one
        # is grandfathered.
        fresh, baselined = baseline.split(
            [self._finding(), self._finding()]
        )
        assert len(fresh) == 1 and len(baselined) == 1

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        fresh, baselined = baseline.split([self._finding()])
        assert len(fresh) == 1 and baselined == []

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(ConfigError):
            Baseline.load(path)


# ------------------------------------------------------ engine & registry


class TestEngine:
    def test_select_restricts_rules(self):
        source = """
        import time

        start = time.time() * 1e-3
        """
        assert codes(lint(source, path="repro/net/x.py")) == [
            "DET002", "UNIT001",
        ]
        assert codes(
            lint(source, path="repro/net/x.py", select=["DET002"])
        ) == ["DET002"]
        assert codes(
            lint(source, path="repro/net/x.py", ignore=["DET002"])
        ) == ["UNIT001"]

    def test_unknown_code_raises(self):
        with pytest.raises(ConfigError):
            select_rules(["NOPE999"], None)
        with pytest.raises(ConfigError):
            get_rule("NOPE999")

    def test_all_seven_rules_registered(self):
        registered = {rule.code for rule in all_rules()}
        assert registered >= {
            "DET001", "DET002", "DET003",
            "UNIT001", "FP001", "PICKLE001", "RUN001",
        }

    def test_unparseable_file_reports_parse_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        report = lint_paths([str(bad)])
        assert codes(report.findings) == ["PARSE000"]
        assert not report.ok

    def test_report_json_document(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "import time\nstart = time.time()\n", encoding="utf-8"
        )
        report = lint_paths([str(target)])
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["version"] == 1
        assert doc["summary"]["by_code"] == {"DET002": 1}
        (entry,) = doc["findings"]
        assert entry["code"] == "DET002"
        assert entry["line"] == 2

    def test_findings_sorted_by_position(self):
        found = lint(
            """
            import time

            later = time.time() * 1e-3
            earlier = time.time()
            """,
            path="repro/net/x.py",
        )
        assert [(f.line, f.code) for f in found] == sorted(
            (f.line, f.code) for f in found
        )
