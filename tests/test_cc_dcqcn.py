"""Fine-grained DCQCN model tests: rate machine, unfairness, calibration."""

import numpy as np
import pytest

from repro.cc.dcqcn import (
    AGGRESSIVE_TIMER,
    DEFAULT_TIMER,
    DcqcnFluidSimulator,
    DcqcnParams,
    DcqcnSender,
    calibrate_timer_weights,
)
from repro.errors import ConfigError, SimulationError
from repro.units import gbps, to_gbps


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestParams:
    def test_defaults_are_valid(self):
        params = DcqcnParams()
        assert params.line_rate == pytest.approx(gbps(50))
        assert params.timer == DEFAULT_TIMER

    def test_with_timer(self):
        params = DcqcnParams().with_timer(100e-6)
        assert params.timer == 100e-6
        assert params.line_rate == DcqcnParams().line_rate

    def test_invalid_g_rejected(self):
        with pytest.raises(ConfigError):
            DcqcnParams(g=1.5)

    def test_invalid_min_rate_rejected(self):
        with pytest.raises(ConfigError):
            DcqcnParams(min_rate=gbps(100))


class TestSenderStateMachine:
    def test_starts_at_line_rate(self):
        sender = DcqcnSender("s", DcqcnParams(), _rng())
        assert sender.rate == pytest.approx(gbps(50))

    def test_no_marking_keeps_line_rate(self):
        sender = DcqcnSender("s", DcqcnParams(), _rng())
        for step in range(1000):
            sender.step(step * 5e-6, 5e-6, 0.0)
        assert sender.rate == pytest.approx(gbps(50))
        assert sender.cnps_received == 0

    def test_certain_marking_cuts_rate(self):
        sender = DcqcnSender("s", DcqcnParams(), _rng())
        for step in range(1000):
            sender.step(step * 5e-6, 5e-6, 1.0)
        assert sender.rate < gbps(50)
        assert sender.cnps_received > 0

    def test_rate_floor_respected(self):
        params = DcqcnParams()
        sender = DcqcnSender("s", params, _rng())
        for step in range(20000):
            sender.step(step * 5e-6, 5e-6, 1.0)
        assert sender.rate >= params.min_rate

    def test_alpha_decays_without_cnps(self):
        sender = DcqcnSender("s", DcqcnParams(), _rng())
        assert sender.alpha == 1.0
        for step in range(1000):
            sender.step(step * 5e-6, 5e-6, 0.0)
        assert sender.alpha < 0.9

    def test_finite_flow_completes(self):
        sender = DcqcnSender(
            "s", DcqcnParams(), _rng(), data_bytes=1e6
        )
        total = 0.0
        for step in range(10000):
            total += sender.step(step * 5e-6, 5e-6, 0.0)
            if sender.done:
                break
        assert sender.done
        assert total == pytest.approx(1e6)

    def test_done_flow_sends_nothing(self):
        sender = DcqcnSender("s", DcqcnParams(), _rng(), data_bytes=0.0)
        assert sender.done
        assert sender.step(0.0, 5e-6, 0.0) == 0.0


class TestBottleneckSharing:
    def test_equal_timers_share_roughly_equally(self):
        sim = DcqcnFluidSimulator(capacity=gbps(50))
        params = DcqcnParams()
        sim.add_sender("a", params, _rng(1))
        sim.add_sender("b", params, _rng(2))
        result = sim.run(0.1)
        ra = result.mean_rate("a", start=0.03)
        rb = result.mean_rate("b", start=0.03)
        assert ra / rb == pytest.approx(1.0, abs=0.25)

    def test_smaller_timer_wins_bandwidth(self):
        # Sample every tick: the default 250us grid is an exact multiple
        # of cnp_interval (50us), so coarser sampling aliases with the
        # CNP sawtooth and biases the measured means.
        sim = DcqcnFluidSimulator(capacity=gbps(50), sample_interval=5e-6)
        params = DcqcnParams()
        sim.add_sender("fast", params.with_timer(AGGRESSIVE_TIMER), _rng(1))
        sim.add_sender("slow", params.with_timer(DEFAULT_TIMER), _rng(2))
        result = sim.run(0.12)
        fast = result.mean_rate("fast", start=0.03)
        slow = result.mean_rate("slow", start=0.03)
        assert fast > slow * 1.04  # unfair, Figure 1c direction

    def test_aggregate_stays_near_capacity(self):
        sim = DcqcnFluidSimulator(capacity=gbps(50))
        params = DcqcnParams()
        sim.add_sender("a", params, _rng(1))
        sim.add_sender("b", params, _rng(2))
        result = sim.run(0.1)
        total = result.mean_rate("a", start=0.03) + result.mean_rate(
            "b", start=0.03
        )
        assert to_gbps(total) == pytest.approx(50, rel=0.12)

    def test_run_without_senders_rejected(self):
        with pytest.raises(SimulationError):
            DcqcnFluidSimulator().run(0.01)

    def test_queue_builds_under_overload(self):
        sim = DcqcnFluidSimulator(capacity=gbps(50))
        params = DcqcnParams()
        sim.add_sender("a", params, _rng(1))
        sim.add_sender("b", params, _rng(2))
        result = sim.run(0.02)
        assert result.queue_series.values.max() > 0

    def test_determinism_with_same_seeds(self):
        def run():
            sim = DcqcnFluidSimulator(capacity=gbps(50))
            params = DcqcnParams()
            sim.add_sender("a", params, _rng(1))
            sim.add_sender("b", params, _rng(2))
            return sim.run(0.05)

        r1, r2 = run(), run()
        np.testing.assert_allclose(
            r1.rate_series["a"].values, r2.rate_series["a"].values
        )


class TestCalibration:
    def test_weights_normalized_to_least_aggressive(self):
        weights = calibrate_timer_weights(
            [AGGRESSIVE_TIMER, DEFAULT_TIMER], duration=0.1, seed=3
        )
        assert weights[DEFAULT_TIMER] == pytest.approx(1.0)
        assert weights[AGGRESSIVE_TIMER] > 1.0

    def test_needs_two_timers(self):
        with pytest.raises(ConfigError):
            calibrate_timer_weights([DEFAULT_TIMER])

    def test_mean_rate_requires_samples(self):
        sim = DcqcnFluidSimulator(capacity=gbps(50))
        sim.add_sender("a", DcqcnParams(), _rng(1))
        result = sim.run(0.01)
        with pytest.raises(SimulationError):
            result.mean_rate("a", start=5.0)
