"""Tests for the incremental compatibility engine (core/incremental).

The load-bearing property is *metamorphic equivalence*: after any
sequence of arrivals and departures, ``engine.solve()`` must be
indistinguishable — verdict, rotations, overlap, violated links,
components, method string — from building a fresh
``ClusterCompatibilityProblem`` out of the same snapshot and solving it
from scratch.
"""

import pytest

from repro.core.circle import JobCircle
from repro.core.cluster_compat import ClusterCompatibilityProblem
from repro.core.compatibility import CompatibilityChecker
from repro.core.incremental import IncrementalCompatibilityEngine
from repro.errors import CompatibilityError
from repro.sim.rng import RandomStreams
from repro.units import gbps
from repro.workloads.job import JobSpec


def quarter_circle(job_id, perimeter=400, comm=100, phase=0):
    """One job communicating ``comm`` of every ``perimeter`` ticks."""
    return JobCircle.from_arcs(job_id, perimeter, [(phase, comm)])


def fresh_result(engine, seed=0):
    circles = {job_id: None for job_id in engine.jobs}
    problem = ClusterCompatibilityProblem.from_assignments(
        [engine._circles[j] for j in sorted(circles)],
        {j: list(engine.links_of(j)) for j in sorted(circles)},
    )
    return problem.solve(seed=seed)


def assert_matches_scratch(engine, seed=0):
    got = engine.solve()
    want = fresh_result(engine, seed=seed)
    assert got.compatible == want.compatible
    assert got.rotations == want.rotations
    assert got.overlap_ticks == want.overlap_ticks
    assert got.violated_links == want.violated_links
    assert got.components == want.components
    assert got.method == want.method


class TestEngineBasics:
    def test_empty_engine_is_compatible(self):
        engine = IncrementalCompatibilityEngine()
        assert engine.cluster_compatible
        assert engine.solve().compatible
        assert engine.components() == []

    def test_single_job_trivial(self):
        engine = IncrementalCompatibilityEngine()
        verdict = engine.add(quarter_circle("a"), ["L0"])
        assert verdict.compatible
        assert verdict.component == ("a",)
        assert engine.rotation_of("a") == 0
        assert_matches_scratch(engine)

    def test_linkless_job_forms_singleton_component(self):
        engine = IncrementalCompatibilityEngine()
        verdict = engine.add(quarter_circle("solo"), [])
        assert verdict.compatible
        assert engine.components() == [["solo"]]

    def test_compatible_pair_admitted_by_screen(self):
        engine = IncrementalCompatibilityEngine()
        engine.add(quarter_circle("a"), ["L0"])
        verdict = engine.add(quarter_circle("b"), ["L0"])
        assert verdict.compatible
        assert verdict.method == "screen"
        # The running job kept its phase; the newcomer slid around it.
        assert engine.rotation_of("a") == 0
        assert engine.rotation_of("b") != 0
        overlap, violated = engine.live_audit()
        assert overlap == 0 and violated == []
        assert_matches_scratch(engine)

    def test_overloaded_link_is_incompatible(self):
        engine = IncrementalCompatibilityEngine()
        engine.add(quarter_circle("a", comm=250), ["L0"])
        verdict = engine.add(quarter_circle("b", comm=250), ["L0"])
        assert not verdict.compatible
        assert "L0" in verdict.violated_links
        assert not engine.cluster_compatible
        assert_matches_scratch(engine)

    def test_duplicate_add_raises(self):
        engine = IncrementalCompatibilityEngine()
        engine.add(quarter_circle("a"), ["L0"])
        with pytest.raises(CompatibilityError):
            engine.add(quarter_circle("a"), ["L1"])

    def test_remove_unknown_raises(self):
        engine = IncrementalCompatibilityEngine()
        with pytest.raises(CompatibilityError):
            engine.remove("ghost")

    def test_coverage_capacity_must_be_one(self):
        checker = CompatibilityChecker(coverage_capacity=2)
        with pytest.raises(CompatibilityError):
            IncrementalCompatibilityEngine(checker=checker)


class TestIncrementalBehaviour:
    def test_try_admit_does_not_commit(self):
        engine = IncrementalCompatibilityEngine()
        engine.add(quarter_circle("a"), ["L0"])
        verdict = engine.try_admit(quarter_circle("b"), ["L0"])
        assert verdict.compatible
        assert "b" not in engine
        assert engine.components() == [["a"]]

    def test_untouched_components_served_from_cache(self):
        engine = IncrementalCompatibilityEngine()
        engine.add(quarter_circle("a"), ["L0"])
        engine.add(quarter_circle("b"), ["L0"])
        engine.solve()
        solves_before = engine.stats()["component_solves"]
        # A new job on a *different* link must not re-solve {a, b}.
        engine.add(quarter_circle("c"), ["L9"])
        engine.solve()
        after = engine.stats()
        assert after["component_solves"] == solves_before + 1  # just {c}
        assert after["component_cache_hits"] >= 1

    def test_repeat_solve_is_fully_cached(self):
        engine = IncrementalCompatibilityEngine()
        engine.add(quarter_circle("a"), ["L0"])
        engine.add(quarter_circle("b"), ["L0"])
        engine.solve()
        solves = engine.stats()["component_solves"]
        engine.solve()
        assert engine.stats()["component_solves"] == solves

    def test_remove_splits_component_without_resolving(self):
        engine = IncrementalCompatibilityEngine()
        engine.add(quarter_circle("a"), ["L0"])
        engine.add(quarter_circle("b"), ["L0", "L1"])
        engine.add(quarter_circle("c"), ["L1"])
        assert engine.components() == [["a", "b", "c"]]
        solves = engine.stats()["component_solves"]
        engine.remove("b")  # bridge job: the component splits in two
        assert engine.components() == [["a"], ["c"]]
        # Parent was compatible, so the fragments inherit the verdict.
        assert engine.stats()["component_solves"] == solves
        assert engine.cluster_compatible
        assert_matches_scratch(engine)

    def test_departure_can_clear_congestion(self):
        engine = IncrementalCompatibilityEngine()
        engine.add(quarter_circle("a", comm=200), ["L0"])
        engine.add(quarter_circle("b", comm=200), ["L0"])
        engine.add(quarter_circle("c", comm=200), ["L0"])  # 150% load
        assert not engine.cluster_compatible
        engine.remove("c")
        assert engine.cluster_compatible
        overlap, _ = engine.live_audit()
        assert overlap == 0
        assert_matches_scratch(engine)

    def test_screen_admission_preserves_running_phases(self):
        engine = IncrementalCompatibilityEngine()
        engine.add(quarter_circle("a"), ["L0"])
        engine.add(quarter_circle("b"), ["L0"])
        rotations = engine.live_rotations
        verdict = engine.add(quarter_circle("c"), ["L0"])
        assert verdict.method == "screen"
        for job_id, rotation in rotations.items():
            assert engine.rotation_of(job_id) == rotation

    def test_candidate_score_clean_vs_congested(self):
        engine = IncrementalCompatibilityEngine()
        engine.add(quarter_circle("a"), ["L0"])
        engine.add(quarter_circle("hog", comm=390), ["L1"])
        clean, fraction = engine.candidate_score(
            quarter_circle("new"), ["L0"]
        )
        assert clean and fraction == 0.0
        blocked, fraction = engine.candidate_score(
            quarter_circle("new"), ["L1"]
        )
        assert not blocked
        assert fraction > 0.5


class TestMetamorphicRandomSequences:
    """Satellite: randomized arrival/departure streams vs from-scratch."""

    PERIODS = (240, 300, 360, 400, 480, 600)
    LINKS = tuple(f"L{i}" for i in range(5))

    def _spec(self, rng, index):
        period_ms = self.PERIODS[int(rng.integers(len(self.PERIODS)))]
        frac = float(rng.uniform(0.1, 0.45))
        period_s = period_ms / 1000.0
        return JobSpec(
            job_id=f"j{index:03d}",
            compute_time=(1.0 - frac) * period_s,
            comm_bytes=frac * period_s * gbps(42),
            n_workers=2,
        )

    @pytest.mark.parametrize("stream_seed", [7, 21, 99])
    def test_engine_matches_scratch_after_every_event(self, stream_seed):
        checker = CompatibilityChecker()
        engine = IncrementalCompatibilityEngine(checker=checker, seed=0)
        rng = RandomStreams(stream_seed).get("incremental-events")
        live = {}
        for step in range(40):
            if live and rng.random() < 0.35:
                job_id = sorted(live)[int(rng.integers(len(live)))]
                engine.remove(job_id)
                del live[job_id]
            else:
                spec = self._spec(rng, step)
                circle = checker.circle(spec)
                n_links = int(rng.integers(1, 3))
                links = sorted(
                    {
                        self.LINKS[int(rng.integers(len(self.LINKS)))]
                        for _ in range(n_links)
                    }
                )
                engine.add(circle, links)
                live[spec.job_id] = links
            got = engine.solve()
            problem = ClusterCompatibilityProblem.from_assignments(
                [engine._circles[j] for j in sorted(live)],
                {j: live[j] for j in sorted(live)},
            )
            want = problem.solve(seed=0)
            assert got.compatible == want.compatible
            assert got.rotations == want.rotations
            assert got.overlap_ticks == want.overlap_ticks
            assert got.violated_links == want.violated_links
            assert got.components == want.components
            assert got.method == want.method
            # Live certificate: a compatible engine audits clean.
            if engine.cluster_compatible:
                overlap, violated = engine.live_audit()
                assert overlap == 0 and violated == []

    def test_sequences_exercise_both_paths(self):
        """The randomized streams must hit screens AND full solves."""
        checker = CompatibilityChecker()
        engine = IncrementalCompatibilityEngine(checker=checker, seed=0)
        rng = RandomStreams(7).get("incremental-events")
        for step in range(40):
            spec = self._spec(rng, step)
            links = [self.LINKS[step % len(self.LINKS)]]
            engine.add(checker.circle(spec), links)
        stats = engine.stats()
        assert stats["screen_admits"] > 0
        assert stats["component_solves"] > 0
