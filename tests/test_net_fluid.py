"""Fluid-allocator tests: max-min, weights, priorities, caps, invariants."""

import pytest

from repro.errors import AllocationError, ConfigError
from repro.net.flows import Flow
from repro.net.fluid import FluidAllocator
from repro.net.topology import Link
from repro.units import gbps


def _link(name="L1", capacity=gbps(42)):
    return Link("a", "b", capacity, name=name)


def _flow(fid, links, weight=1.0, priority=0, cap=None):
    return Flow(
        flow_id=fid, src="s", dst="d", links=links,
        weight=weight, priority=priority, rate_cap=cap, job_id=fid,
    )


class TestFairSharing:
    def test_two_flows_split_evenly(self):
        link = _link()
        alloc = FluidAllocator().allocate(
            [_flow("f1", [link]), _flow("f2", [link])]
        )
        assert alloc.rates[_flow("f1", [link])] == pytest.approx(
            link.capacity / 2
        )
        assert alloc.utilization(link) == pytest.approx(1.0)

    def test_single_flow_takes_all(self):
        link = _link()
        f = _flow("f", [link])
        alloc = FluidAllocator().allocate([f])
        assert alloc.rate_of(f) == pytest.approx(link.capacity)

    def test_n_flows_equal_shares(self):
        link = _link()
        flows = [_flow(f"f{i}", [link]) for i in range(7)]
        alloc = FluidAllocator().allocate(flows)
        for f in flows:
            assert alloc.rate_of(f) == pytest.approx(link.capacity / 7)

    def test_empty_allocation(self):
        alloc = FluidAllocator().allocate([])
        assert alloc.rates == {}


class TestWeights:
    def test_two_to_one_split(self):
        link = _link()
        f1 = _flow("f1", [link], weight=2.0)
        f2 = _flow("f2", [link], weight=1.0)
        alloc = FluidAllocator().allocate([f1, f2])
        assert alloc.rate_of(f1) == pytest.approx(link.capacity * 2 / 3)
        assert alloc.rate_of(f2) == pytest.approx(link.capacity / 3)

    def test_weight_only_matters_on_shared_links(self):
        shared = _link("L1")
        private = Link("b", "c", gbps(10), name="L2")
        f1 = _flow("f1", [shared, private], weight=100.0)
        f2 = _flow("f2", [shared], weight=1.0)
        alloc = FluidAllocator().allocate([f1, f2])
        # f1 is capped by its private 10 Gbps link; f2 soaks up the rest.
        assert alloc.rate_of(f1) == pytest.approx(gbps(10))
        assert alloc.rate_of(f2) == pytest.approx(gbps(32))


class TestRateCaps:
    def test_cap_respected(self):
        link = _link()
        f = _flow("f", [link], cap=gbps(5))
        alloc = FluidAllocator().allocate([f])
        assert alloc.rate_of(f) == pytest.approx(gbps(5))

    def test_capped_flow_releases_bandwidth(self):
        link = _link()
        f1 = _flow("f1", [link], cap=gbps(2))
        f2 = _flow("f2", [link])
        alloc = FluidAllocator().allocate([f1, f2])
        assert alloc.rate_of(f1) == pytest.approx(gbps(2))
        assert alloc.rate_of(f2) == pytest.approx(gbps(40))

    def test_pathless_flow_needs_cap(self):
        f = _flow("f", [], cap=gbps(3))
        alloc = FluidAllocator().allocate([f])
        assert alloc.rate_of(f) == pytest.approx(gbps(3))

    def test_pathless_uncapped_rejected(self):
        with pytest.raises(AllocationError):
            FluidAllocator().allocate([_flow("f", [])])


class TestPriorities:
    def test_strict_priority_starves_lower_class(self):
        link = _link()
        high = _flow("high", [link], priority=2)
        low = _flow("low", [link], priority=1)
        alloc = FluidAllocator().allocate([high, low])
        assert alloc.rate_of(high) == pytest.approx(link.capacity)
        assert alloc.rate_of(low) == pytest.approx(0.0)

    def test_lower_class_gets_leftovers(self):
        link = _link()
        high = _flow("high", [link], priority=2, cap=gbps(10))
        low = _flow("low", [link], priority=1)
        alloc = FluidAllocator().allocate([high, low])
        assert alloc.rate_of(low) == pytest.approx(gbps(32))

    def test_within_class_weighted(self):
        link = _link()
        a = _flow("a", [link], priority=1, weight=3.0)
        b = _flow("b", [link], priority=1, weight=1.0)
        alloc = FluidAllocator().allocate([a, b])
        assert alloc.rate_of(a) == pytest.approx(link.capacity * 0.75)


class TestMultiLink:
    def test_bottleneck_is_binding(self):
        wide = Link("a", "b", gbps(100), name="wide")
        narrow = Link("b", "c", gbps(10), name="narrow")
        f = _flow("f", [wide, narrow])
        alloc = FluidAllocator().allocate([f])
        assert alloc.rate_of(f) == pytest.approx(gbps(10))

    def test_max_min_across_links(self):
        # Classic 3-flow example: f1 spans both links, f2 and f3 use one
        # link each. Max-min: f1 = f2 = f3 = C/2.
        l1 = Link("a", "b", gbps(10), name="l1")
        l2 = Link("b", "c", gbps(10), name="l2")
        f1 = _flow("f1", [l1, l2])
        f2 = _flow("f2", [l1])
        f3 = _flow("f3", [l2])
        alloc = FluidAllocator().allocate([f1, f2, f3])
        assert alloc.rate_of(f1) == pytest.approx(gbps(5))
        assert alloc.rate_of(f2) == pytest.approx(gbps(5))
        assert alloc.rate_of(f3) == pytest.approx(gbps(5))

    def test_asymmetric_capacities(self):
        l1 = Link("a", "b", gbps(10), name="l1")
        l2 = Link("b", "c", gbps(30), name="l2")
        f1 = _flow("f1", [l1, l2])
        f2 = _flow("f2", [l2])
        alloc = FluidAllocator().allocate([f1, f2])
        # f1 limited to 10 by l1; f2 takes the remaining 20 on l2.
        assert alloc.rate_of(f1) == pytest.approx(gbps(10))
        assert alloc.rate_of(f2) == pytest.approx(gbps(20))

    def test_no_link_oversubscribed(self):
        link = _link()
        flows = [
            _flow(f"f{i}", [link], weight=float(i + 1)) for i in range(5)
        ]
        alloc = FluidAllocator().allocate(flows)
        assert alloc.link_loads[link] <= link.capacity * (1 + 1e-9)


class TestFlowValidation:
    def test_zero_weight_rejected(self):
        with pytest.raises(ConfigError):
            Flow(flow_id="f", src="a", dst="b", weight=0.0)

    def test_bad_progress_rejected(self):
        with pytest.raises(ConfigError):
            Flow(flow_id="f", src="a", dst="b", progress=1.5)

    def test_bad_cap_rejected(self):
        with pytest.raises(ConfigError):
            Flow(flow_id="f", src="a", dst="b", rate_cap=0.0)

    def test_flow_identity_by_id(self):
        a = Flow(flow_id="f", src="a", dst="b")
        b = Flow(flow_id="f", src="x", dst="y")
        assert a == b
        assert hash(a) == hash(b)

    def test_traverses(self):
        link = _link()
        f = _flow("f", [link])
        assert f.traverses(link)
        assert not f.traverses(Link("x", "y", 1.0, name="other"))


class TestFabricIncidence:
    """Multi-hop paths on fat-tree-shaped incidence (ISSUE 9 satellite)."""

    def _fabric_flows(self):
        from repro.net.routing import Router
        from repro.net.topology import Topology

        topo = Topology.fat_tree(4, host_capacity=gbps(50))
        router = Router(topo)
        pairs = [
            ("f0", "h0_0_0", "h1_0_0"),
            ("f1", "h0_0_1", "h1_0_1"),
            ("f2", "h2_0_0", "h1_1_0"),
            ("f3", "h0_1_0", "h0_0_0"),
        ]
        flows = []
        for fid, src, dst in pairs:
            links = list(router.route(src, dst))
            flows.append(
                Flow(flow_id=fid, src=src, dst=dst, links=links,
                     job_id=fid)
            )
        return topo, flows

    def test_six_hop_paths_allocate(self):
        topo, flows = self._fabric_flows()
        alloc = FluidAllocator().allocate(flows)
        assert len(alloc.rates) == len(flows)
        assert all(rate > 0 for rate in alloc.rates.values())

    def test_no_fabric_link_oversubscribed(self):
        topo, flows = self._fabric_flows()
        alloc = FluidAllocator().allocate(flows)
        for link, load in alloc.link_loads.items():
            assert load <= link.capacity * (1 + 1e-9), link.name

    def test_shared_uplink_bottleneck(self):
        # f0 and f1 leave the same rack; the single-shortest-path router
        # sends both up the same edge->agg uplink, so they split it.
        topo, flows = self._fabric_flows()
        alloc = FluidAllocator().allocate(flows[:2])
        up = topo.link_by_name("up_0_0_0")
        assert alloc.link_loads[up] == pytest.approx(up.capacity)
        assert alloc.rate_of(flows[0]) == pytest.approx(up.capacity / 2)

    def test_strict_priority_with_midpath_cap(self):
        # High class capped mid-path: the low class must soak up the
        # remainder on the shared link, not be starved to zero.
        shared = Link("a", "b", gbps(40), name="shared")
        tail = Link("b", "c", gbps(10), name="tail")
        hi = _flow("hi", [shared, tail], priority=2)
        lo = _flow("lo", [shared], priority=1)
        alloc = FluidAllocator().allocate([hi, lo])
        assert alloc.rate_of(hi) == pytest.approx(gbps(10))
        assert alloc.rate_of(lo) == pytest.approx(gbps(30))

    def test_zero_capacity_link_freezes_incident_flows(self):
        # A failed (zero-capacity) fabric link pins its flows at zero
        # without starving flows elsewhere.
        dead = Link("a", "b", gbps(10), name="dead")
        dead.capacity = 0.0
        live = Link("c", "d", gbps(10), name="live")
        f_dead = _flow("fd", [dead])
        f_live = _flow("fl", [live])
        alloc = FluidAllocator().allocate([f_dead, f_live])
        assert alloc.rate_of(f_dead) == 0.0
        assert alloc.rate_of(f_live) == pytest.approx(gbps(10))
