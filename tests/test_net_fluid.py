"""Fluid-allocator tests: max-min, weights, priorities, caps, invariants."""

import pytest

from repro.errors import AllocationError, ConfigError
from repro.net.flows import Flow
from repro.net.fluid import FluidAllocator
from repro.net.topology import Link
from repro.units import gbps


def _link(name="L1", capacity=gbps(42)):
    return Link("a", "b", capacity, name=name)


def _flow(fid, links, weight=1.0, priority=0, cap=None):
    return Flow(
        flow_id=fid, src="s", dst="d", links=links,
        weight=weight, priority=priority, rate_cap=cap, job_id=fid,
    )


class TestFairSharing:
    def test_two_flows_split_evenly(self):
        link = _link()
        alloc = FluidAllocator().allocate(
            [_flow("f1", [link]), _flow("f2", [link])]
        )
        assert alloc.rates[_flow("f1", [link])] == pytest.approx(
            link.capacity / 2
        )
        assert alloc.utilization(link) == pytest.approx(1.0)

    def test_single_flow_takes_all(self):
        link = _link()
        f = _flow("f", [link])
        alloc = FluidAllocator().allocate([f])
        assert alloc.rate_of(f) == pytest.approx(link.capacity)

    def test_n_flows_equal_shares(self):
        link = _link()
        flows = [_flow(f"f{i}", [link]) for i in range(7)]
        alloc = FluidAllocator().allocate(flows)
        for f in flows:
            assert alloc.rate_of(f) == pytest.approx(link.capacity / 7)

    def test_empty_allocation(self):
        alloc = FluidAllocator().allocate([])
        assert alloc.rates == {}


class TestWeights:
    def test_two_to_one_split(self):
        link = _link()
        f1 = _flow("f1", [link], weight=2.0)
        f2 = _flow("f2", [link], weight=1.0)
        alloc = FluidAllocator().allocate([f1, f2])
        assert alloc.rate_of(f1) == pytest.approx(link.capacity * 2 / 3)
        assert alloc.rate_of(f2) == pytest.approx(link.capacity / 3)

    def test_weight_only_matters_on_shared_links(self):
        shared = _link("L1")
        private = Link("b", "c", gbps(10), name="L2")
        f1 = _flow("f1", [shared, private], weight=100.0)
        f2 = _flow("f2", [shared], weight=1.0)
        alloc = FluidAllocator().allocate([f1, f2])
        # f1 is capped by its private 10 Gbps link; f2 soaks up the rest.
        assert alloc.rate_of(f1) == pytest.approx(gbps(10))
        assert alloc.rate_of(f2) == pytest.approx(gbps(32))


class TestRateCaps:
    def test_cap_respected(self):
        link = _link()
        f = _flow("f", [link], cap=gbps(5))
        alloc = FluidAllocator().allocate([f])
        assert alloc.rate_of(f) == pytest.approx(gbps(5))

    def test_capped_flow_releases_bandwidth(self):
        link = _link()
        f1 = _flow("f1", [link], cap=gbps(2))
        f2 = _flow("f2", [link])
        alloc = FluidAllocator().allocate([f1, f2])
        assert alloc.rate_of(f1) == pytest.approx(gbps(2))
        assert alloc.rate_of(f2) == pytest.approx(gbps(40))

    def test_pathless_flow_needs_cap(self):
        f = _flow("f", [], cap=gbps(3))
        alloc = FluidAllocator().allocate([f])
        assert alloc.rate_of(f) == pytest.approx(gbps(3))

    def test_pathless_uncapped_rejected(self):
        with pytest.raises(AllocationError):
            FluidAllocator().allocate([_flow("f", [])])


class TestPriorities:
    def test_strict_priority_starves_lower_class(self):
        link = _link()
        high = _flow("high", [link], priority=2)
        low = _flow("low", [link], priority=1)
        alloc = FluidAllocator().allocate([high, low])
        assert alloc.rate_of(high) == pytest.approx(link.capacity)
        assert alloc.rate_of(low) == pytest.approx(0.0)

    def test_lower_class_gets_leftovers(self):
        link = _link()
        high = _flow("high", [link], priority=2, cap=gbps(10))
        low = _flow("low", [link], priority=1)
        alloc = FluidAllocator().allocate([high, low])
        assert alloc.rate_of(low) == pytest.approx(gbps(32))

    def test_within_class_weighted(self):
        link = _link()
        a = _flow("a", [link], priority=1, weight=3.0)
        b = _flow("b", [link], priority=1, weight=1.0)
        alloc = FluidAllocator().allocate([a, b])
        assert alloc.rate_of(a) == pytest.approx(link.capacity * 0.75)


class TestMultiLink:
    def test_bottleneck_is_binding(self):
        wide = Link("a", "b", gbps(100), name="wide")
        narrow = Link("b", "c", gbps(10), name="narrow")
        f = _flow("f", [wide, narrow])
        alloc = FluidAllocator().allocate([f])
        assert alloc.rate_of(f) == pytest.approx(gbps(10))

    def test_max_min_across_links(self):
        # Classic 3-flow example: f1 spans both links, f2 and f3 use one
        # link each. Max-min: f1 = f2 = f3 = C/2.
        l1 = Link("a", "b", gbps(10), name="l1")
        l2 = Link("b", "c", gbps(10), name="l2")
        f1 = _flow("f1", [l1, l2])
        f2 = _flow("f2", [l1])
        f3 = _flow("f3", [l2])
        alloc = FluidAllocator().allocate([f1, f2, f3])
        assert alloc.rate_of(f1) == pytest.approx(gbps(5))
        assert alloc.rate_of(f2) == pytest.approx(gbps(5))
        assert alloc.rate_of(f3) == pytest.approx(gbps(5))

    def test_asymmetric_capacities(self):
        l1 = Link("a", "b", gbps(10), name="l1")
        l2 = Link("b", "c", gbps(30), name="l2")
        f1 = _flow("f1", [l1, l2])
        f2 = _flow("f2", [l2])
        alloc = FluidAllocator().allocate([f1, f2])
        # f1 limited to 10 by l1; f2 takes the remaining 20 on l2.
        assert alloc.rate_of(f1) == pytest.approx(gbps(10))
        assert alloc.rate_of(f2) == pytest.approx(gbps(20))

    def test_no_link_oversubscribed(self):
        link = _link()
        flows = [
            _flow(f"f{i}", [link], weight=float(i + 1)) for i in range(5)
        ]
        alloc = FluidAllocator().allocate(flows)
        assert alloc.link_loads[link] <= link.capacity * (1 + 1e-9)


class TestFlowValidation:
    def test_zero_weight_rejected(self):
        with pytest.raises(ConfigError):
            Flow(flow_id="f", src="a", dst="b", weight=0.0)

    def test_bad_progress_rejected(self):
        with pytest.raises(ConfigError):
            Flow(flow_id="f", src="a", dst="b", progress=1.5)

    def test_bad_cap_rejected(self):
        with pytest.raises(ConfigError):
            Flow(flow_id="f", src="a", dst="b", rate_cap=0.0)

    def test_flow_identity_by_id(self):
        a = Flow(flow_id="f", src="a", dst="b")
        b = Flow(flow_id="f", src="x", dst="y")
        assert a == b
        assert hash(a) == hash(b)

    def test_traverses(self):
        link = _link()
        f = _flow("f", [link])
        assert f.traverses(link)
        assert not f.traverses(Link("x", "y", 1.0, name="other"))
