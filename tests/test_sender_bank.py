"""Vector/scalar engine equivalence for the fixed-step CC simulators.

The vectorized :class:`repro.cc.sender_bank.SenderBank` (and the AIMD
span engine) are required to be *bit-identical* to the dt-by-dt scalar
reference — same sampled series, same random draws, same timelines —
which is a stronger guarantee than the shared ``repro.floats``
tolerances the rest of the suite uses. These tests pin that, plus the
sample-grid alignment and the engine-selection plumbing.
"""

import numpy as np
import pytest

from repro.cc.aimd import AimdFluidSimulator, AimdParams
from repro.cc.dcqcn import (
    AGGRESSIVE_TIMER,
    DEFAULT_TIMER,
    DcqcnFluidSimulator,
    DcqcnParams,
    OnOffDcqcnJob,
)
from repro.cc.sender_bank import SenderBank
from repro.errors import ConfigError
from repro.units import gbps, kib, mbps


def _assert_identical(result_scalar, result_vector):
    """Every sampled series matches bit-for-bit across engines."""
    assert set(result_scalar.rate_series) == set(result_vector.rate_series)
    for name, series in result_scalar.rate_series.items():
        other = result_vector.rate_series[name]
        assert np.array_equal(series.times, other.times), name
        assert np.array_equal(series.values, other.values), name


def _onoff_sim(engine, timers, seed0=10, duration_bytes=0.05 * gbps(42)):
    sim = DcqcnFluidSimulator(capacity=gbps(50), dt=10e-6, engine=engine)
    params = DcqcnParams(line_rate=gbps(50))
    jobs = []
    for index, timer in enumerate(timers):
        job = OnOffDcqcnJob(
            f"J{index + 1}",
            params.with_timer(timer),
            np.random.default_rng(seed0 + index),
            compute_time=0.04,
            comm_bytes=duration_bytes,
            start_offset=index * 0.004,
        )
        sim.add_source(job)
        jobs.append(job)
    return sim, jobs


class TestDcqcnEquivalence:
    @pytest.mark.parametrize(
        "timers",
        [
            (DEFAULT_TIMER * 2, DEFAULT_TIMER * 2),  # fair on-off
            (AGGRESSIVE_TIMER, DEFAULT_TIMER),  # unfair on-off
        ],
        ids=["fair", "unfair"],
    )
    def test_onoff_bit_identical(self, timers):
        sim_s, jobs_s = _onoff_sim("scalar", timers)
        sim_v, jobs_v = _onoff_sim("vector", timers)
        result_s = sim_s.run(0.5)
        result_v = sim_v.run(0.5)
        _assert_identical(result_s, result_v)
        assert np.array_equal(
            result_s.queue_series.values, result_v.queue_series.values
        )
        # Timelines must be byte-identical, not merely close.
        for job_s, job_v in zip(jobs_s, jobs_v):
            assert len(job_s.timeline) > 0
            assert (
                repr(job_s.timeline.__dict__)
                == repr(job_v.timeline.__dict__)
            )

    def test_long_lived_senders_bit_identical(self):
        results = {}
        for engine in ("scalar", "vector"):
            sim = DcqcnFluidSimulator(capacity=gbps(50), engine=engine)
            params = DcqcnParams()
            sim.add_sender(
                "fast",
                params.with_timer(AGGRESSIVE_TIMER),
                np.random.default_rng(1),
            )
            sim.add_sender(
                "slow",
                params.with_timer(DEFAULT_TIMER),
                np.random.default_rng(2),
            )
            results[engine] = sim.run(0.08)
        _assert_identical(results["scalar"], results["vector"])
        assert np.array_equal(
            results["scalar"].queue_series.values,
            results["vector"].queue_series.values,
        )

    def test_finite_sender_completion(self):
        results = {}
        for engine in ("scalar", "vector"):
            sim = DcqcnFluidSimulator(capacity=gbps(50), engine=engine)
            sim.add_sender(
                "bulk",
                DcqcnParams(),
                np.random.default_rng(3),
                data_bytes=2e6,
            )
            sim.add_sender(
                "bg", DcqcnParams(), np.random.default_rng(4)
            )
            results[engine] = sim.run(0.02)
        _assert_identical(results["scalar"], results["vector"])

    def test_pfc_pause_bit_identical(self):
        results = {}
        for engine in ("scalar", "vector"):
            sim = DcqcnFluidSimulator(
                capacity=gbps(50),
                engine=engine,
                pfc_pause_threshold=kib(150),
                pfc_resume_threshold=kib(100),
            )
            for index in range(3):
                sim.add_sender(
                    f"s{index}",
                    DcqcnParams(),
                    np.random.default_rng(20 + index),
                )
            results[engine] = sim.run(0.05)
        _assert_identical(results["scalar"], results["vector"])
        assert np.array_equal(
            results["scalar"].queue_series.values,
            results["vector"].queue_series.values,
        )

    def test_many_senders_batched_path(self):
        # 40 senders crosses BATCH_THRESHOLD, exercising the numpy
        # batched tick kernel rather than the flat per-sender loop.
        results = {}
        for engine in ("scalar", "vector"):
            sim = DcqcnFluidSimulator(capacity=gbps(50), engine=engine)
            for index in range(40):
                sim.add_sender(
                    f"s{index:02d}",
                    DcqcnParams(),
                    np.random.default_rng(100 + index),
                )
            results[engine] = sim.run(0.01)
        _assert_identical(results["scalar"], results["vector"])

    def test_custom_source_falls_back_to_scalar(self):
        class ConstantSource:
            name = "const"
            rate = mbps(200)
            done = False

            def step(self, now, dt, marking_probability):
                return self.rate * dt

        sim = DcqcnFluidSimulator(capacity=gbps(50), engine="vector")
        sim.add_source(ConstantSource())
        assert SenderBank.build(sim) is None
        result = sim.run(0.002)  # runs via the scalar reference loop
        assert result.mean_rate("const") == pytest.approx(mbps(200))


class TestSampleGrid:
    def test_samples_land_on_sample_interval_grid(self):
        # Regression: samples used to land one dt *after* each grid
        # point ((k*samples_every + 1) * dt). They must sit exactly on
        # multiples of sample_interval, in both engines.
        for engine in ("scalar", "vector"):
            sim = DcqcnFluidSimulator(
                capacity=gbps(50),
                dt=5e-6,
                sample_interval=250e-6,
                engine=engine,
            )
            sim.add_sender("a", DcqcnParams(), np.random.default_rng(0))
            result = sim.run(0.01)
            times = result.rate_series["a"].times
            expected = np.arange(1, len(times) + 1) * 250e-6
            assert len(times) == 40
            assert np.allclose(times, expected, rtol=0.0, atol=1e-12)

    def test_aimd_samples_land_on_grid(self):
        sim = AimdFluidSimulator(dt=10e-6, sample_interval=500e-6)
        sim.add_sender("a", AimdParams())
        result = sim.run(0.01)
        times = result.rate_series["a"].times
        expected = np.arange(1, len(times) + 1) * 500e-6
        assert len(times) == 20
        assert np.allclose(times, expected, rtol=0.0, atol=1e-12)


class TestEngineSelection:
    def test_rejects_unknown_engine(self):
        with pytest.raises(ConfigError):
            DcqcnFluidSimulator(engine="simd")
        with pytest.raises(ConfigError):
            AimdFluidSimulator(engine="simd")

    def test_default_engine_is_vector(self):
        assert DcqcnFluidSimulator().engine == "vector"
        assert AimdFluidSimulator().engine == "vector"


class TestAimdEquivalence:
    def _build(self, engine):
        sim = AimdFluidSimulator(capacity=gbps(50), engine=engine)
        sim.add_sender("a", AimdParams())
        sim.add_sender("b", AimdParams(increase_rate=gbps(2) / 0.01))
        sim.add_job(
            "J1", compute_time=0.01, comm_bytes=0.01 * gbps(30)
        )
        sim.add_job(
            "J2",
            compute_time=0.012,
            comm_bytes=0.008 * gbps(25),
            start_offset=0.003,
        )
        return sim

    def test_bit_identical(self):
        result_s = self._build("scalar").run(0.4)
        result_v = self._build("vector").run(0.4)
        _assert_identical(result_s, result_v)
        for name in result_s.timelines:
            assert len(result_s.timelines[name]) > 0
            assert (
                repr(result_s.timelines[name].__dict__)
                == repr(result_v.timelines[name].__dict__)
            )
