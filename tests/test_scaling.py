"""Tests for batch-size scaling laws and the compatibility frontier."""

import pytest

from repro.errors import WorkloadError
from repro.units import gbps
from repro.workloads.allreduce import AllreduceAlgorithm
from repro.workloads.scaling import (
    scaling_profile,
    self_compatibility_threshold,
    sharing_capacity,
)

CAP = gbps(42)


class TestScalingProfile:
    def test_comm_fraction_falls_with_batch(self):
        points = scaling_profile("vgg16", [64, 256, 1024, 4096])
        fractions = [p.comm_fraction for p in points]
        assert fractions == sorted(fractions, reverse=True)

    def test_comm_time_constant_across_batches(self):
        points = scaling_profile("vgg16", [64, 4096])
        assert points[0].comm_time == pytest.approx(points[1].comm_time)

    def test_compute_scales_linearly(self):
        points = scaling_profile("resnet50", [100, 200])
        assert points[1].compute_time == pytest.approx(
            2 * points[0].compute_time
        )

    def test_self_compatible_flag_matches_fraction(self):
        for point in scaling_profile("vgg19", [32, 512, 8192]):
            assert point.self_compatible == (point.comm_fraction <= 0.5)

    def test_sharing_capacity_inverse_of_fraction(self):
        points = scaling_profile("resnet50", [4096])
        point = points[0]
        assert point.sharing_capacity == int(1.0 / point.comm_fraction)

    def test_empty_batches_rejected(self):
        with pytest.raises(WorkloadError):
            scaling_profile("vgg16", [])

    def test_unknown_model_rejected(self):
        with pytest.raises(WorkloadError):
            scaling_profile("alexnet", [64])


class TestThreshold:
    def test_threshold_is_the_frontier(self):
        threshold = self_compatibility_threshold("vgg16")
        assert threshold is not None
        below = scaling_profile("vgg16", [threshold - 1])[0]
        at = scaling_profile("vgg16", [threshold])[0]
        assert not below.self_compatible
        assert at.self_compatible

    def test_small_models_need_small_batches(self):
        # ResNet50's gradient is ~5x smaller than VGG19's, so it crosses
        # the frontier at a much smaller batch.
        resnet = self_compatibility_threshold("resnet50")
        vgg = self_compatibility_threshold("vgg19")
        assert resnet is not None and vgg is not None
        assert resnet < vgg

    def test_max_batch_bound(self):
        assert self_compatibility_threshold(
            "vgg19", max_batch=2
        ) is None

    def test_broadcast_needs_bigger_batches_than_ring(self):
        ring = self_compatibility_threshold(
            "vgg16", algorithm=AllreduceAlgorithm.RING
        )
        broadcast = self_compatibility_threshold(
            "vgg16", algorithm=AllreduceAlgorithm.BROADCAST
        )
        assert ring is not None and broadcast is not None
        assert broadcast > ring

    def test_single_worker_trivially_compatible(self):
        assert self_compatibility_threshold("vgg16", n_workers=1) == 1


class TestSharingCapacity:
    def test_large_batch_hosts_many_copies(self):
        small = sharing_capacity("resnet50", 128)
        large = sharing_capacity("resnet50", 8192)
        assert large > small

    def test_capacity_at_least_one(self):
        assert sharing_capacity("bert", 1) >= 1
