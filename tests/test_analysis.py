"""Analysis-helper tests: stats, CDFs, time-series sampling, reports."""

import numpy as np
import pytest

from repro.analysis.cdf import cdf_at, empirical_cdf, median_of
from repro.analysis.report import (
    ascii_cdf,
    ascii_sparkline,
    ascii_table,
    ascii_timeline,
    format_ms,
)
from repro.analysis.stats import IterationStats, speedup, summarize
from repro.analysis.timeseries import sample_step, smooth, utilization_series
from repro.errors import SimulationError
from repro.sim.trace import StepFunction


class TestStats:
    def test_summarize_basics(self):
        stats = summarize([0.1, 0.2, 0.3])
        assert stats.count == 3
        assert stats.mean == pytest.approx(0.2)
        assert stats.median == pytest.approx(0.2)
        assert stats.minimum == 0.1
        assert stats.maximum == 0.3

    def test_skip_warmup(self):
        stats = summarize([10.0, 0.1, 0.1], skip=1)
        assert stats.count == 2
        assert stats.mean == pytest.approx(0.1)

    def test_ms_properties(self):
        stats = summarize([0.297])
        assert stats.mean_ms == pytest.approx(297)
        assert stats.median_ms == pytest.approx(297)

    def test_percentiles_ordered(self):
        stats = summarize(np.linspace(0.1, 0.5, 100))
        assert stats.p5 < stats.median < stats.p95

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            summarize([])
        with pytest.raises(SimulationError):
            summarize([1.0], skip=5)

    def test_speedup(self):
        assert speedup(1.3, 1.0) == pytest.approx(1.3)
        assert speedup(0.94, 1.0) == pytest.approx(0.94)

    def test_speedup_zero_rejected(self):
        with pytest.raises(SimulationError):
            speedup(1.0, 0.0)


class TestCdf:
    def test_empirical_cdf_shape(self):
        values, probs = empirical_cdf([3.0, 1.0, 2.0])
        np.testing.assert_allclose(values, [1, 2, 3])
        np.testing.assert_allclose(probs, [1 / 3, 2 / 3, 1.0])

    def test_cdf_at(self):
        assert cdf_at([1, 2, 3, 4], 2.5) == pytest.approx(0.5)
        assert cdf_at([1, 2, 3, 4], 0.0) == 0.0
        assert cdf_at([1, 2, 3, 4], 4.0) == 1.0

    def test_median(self):
        assert median_of([1.0, 3.0, 2.0]) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            empirical_cdf([])
        with pytest.raises(SimulationError):
            cdf_at([], 1.0)
        with pytest.raises(SimulationError):
            median_of([])


class TestTimeseries:
    def _square_wave(self):
        step = StepFunction(0.0)
        step.set(1.0, 10.0)
        step.set(2.0, 0.0)
        return step

    def test_sample_is_window_average(self):
        times, values = sample_step(self._square_wave(), 0.0, 3.0, 3)
        np.testing.assert_allclose(values, [0.0, 10.0, 0.0])
        np.testing.assert_allclose(times, [0.5, 1.5, 2.5])

    def test_narrow_phase_never_missed(self):
        step = StepFunction(0.0)
        step.set(1.0, 100.0)
        step.set(1.001, 0.0)  # 1 ms blip
        __, values = sample_step(step, 0.0, 2.0, 4)
        assert values.sum() > 0  # window averaging catches the blip

    def test_bad_window_rejected(self):
        with pytest.raises(SimulationError):
            sample_step(self._square_wave(), 2.0, 1.0)

    def test_smooth_preserves_length_and_mean(self):
        data = np.asarray([0.0, 0, 10, 10, 0, 0])
        out = smooth(data, window=3)
        assert out.size == data.size
        assert out.mean() == pytest.approx(data.mean(), rel=0.2)

    def test_smooth_window_one_is_identity(self):
        data = np.asarray([1.0, 2.0, 3.0])
        np.testing.assert_allclose(smooth(data, 1), data)

    def test_utilization_bounded(self):
        times, util = utilization_series(
            self._square_wave(), capacity=10.0, start=0.0, end=3.0
        )
        assert util.min() >= 0
        assert util.max() <= 1.0 + 1e-9

    def test_utilization_bad_capacity_rejected(self):
        with pytest.raises(SimulationError):
            utilization_series(self._square_wave(), 0.0, 0.0, 1.0)


class TestReport:
    def test_format_ms(self):
        assert format_ms(0.297) == "297.0 ms"

    def test_ascii_table_alignment(self):
        table = ascii_table(
            ["name", "value"], [("a", 1), ("long-name", 22)], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_ascii_sparkline_scales(self):
        spark = ascii_sparkline([0.0, 0.5, 1.0])
        assert len(spark) == 3
        assert spark[0] == " "
        assert spark[-1] == "█"

    def test_ascii_sparkline_empty(self):
        assert ascii_sparkline([]) == ""

    def test_ascii_timeline_resamples(self):
        line = ascii_timeline(
            np.linspace(0, 1, 500), np.linspace(0, 1, 500),
            label="u", width=40,
        )
        assert "u" in line
        assert "|" in line

    def test_ascii_cdf_quantiles(self):
        line = ascii_cdf([0.1] * 10, label="x")
        assert "p50=100.0ms" in line

    def test_ascii_cdf_empty(self):
        assert "(no data)" in ascii_cdf([], label="x")
