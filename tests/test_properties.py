"""Property-based tests (hypothesis) on the core invariants.

These pin down the algebra the whole reproduction rests on:

* arc-set algebra behaves like measurable sets on a circle;
* the exact feasible-rotation computation agrees with brute force;
* the fluid allocator conserves capacity and respects weights;
* the phase simulator conserves bytes;
* solver-claimed compatibility certificates always verify.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.arcs import ArcSet
from repro.core.circle import JobCircle
from repro.core.optimize import (
    exact_pair_feasible_rotations,
    feasible_rotations,
    solve,
)
from repro.core.unified import UnifiedCircle
from repro.net.flows import Flow
from repro.net.fluid import FluidAllocator
from repro.net.topology import Link
from repro.switches.wfq import WeightedFairScheduler

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

perimeters = st.integers(min_value=2, max_value=200)


@st.composite
def arc_sets(draw, perimeter=None):
    p = perimeter if perimeter is not None else draw(perimeters)
    n = draw(st.integers(0, 5))
    arcs = [
        (draw(st.integers(-2 * p, 2 * p)), draw(st.integers(0, p)))
        for _ in range(n)
    ]
    return ArcSet(p, arcs)


@st.composite
def arc_set_pairs(draw):
    p = draw(perimeters)
    return draw(arc_sets(p)), draw(arc_sets(p))


@st.composite
def job_circles(draw, max_period=60):
    period = draw(st.integers(2, max_period))
    comm = draw(st.integers(1, period))
    return JobCircle.from_phases(
        draw(st.text("abcdefgh", min_size=1, max_size=4)) or "j",
        period - comm,
        comm,
    )


# ---------------------------------------------------------------------------
# Arc algebra
# ---------------------------------------------------------------------------

class TestArcAlgebraProperties:
    @given(arc_set_pairs())
    def test_union_measure_inclusion_exclusion(self, pair):
        a, b = pair
        assert a.union(b).measure == (
            a.measure + b.measure - a.intersection(b).measure
        )

    @given(arc_set_pairs())
    def test_intersection_bounded(self, pair):
        a, b = pair
        inter = a.intersection(b)
        assert inter.measure <= min(a.measure, b.measure)

    @given(arc_sets())
    def test_complement_partitions(self, s):
        assert s.measure + s.complement().measure == s.perimeter
        assert s.intersection(s.complement()).is_empty

    @given(arc_sets(), st.integers(-500, 500))
    def test_rotation_preserves_measure(self, s, delta):
        assert s.rotate(delta).measure == s.measure

    @given(arc_sets(), st.integers(-500, 500))
    def test_rotation_inverse(self, s, delta):
        assert s.rotate(delta).rotate(-delta) == s

    @given(arc_sets(), st.integers(1, 4))
    def test_tiling_scales_measure(self, s, k):
        tiled = s.tile(s.perimeter * k)
        assert tiled.measure == s.measure * k

    @given(arc_set_pairs())
    def test_intersects_iff_positive_overlap(self, pair):
        a, b = pair
        assert a.intersects(b) == (a.overlap_length(b) > 0)

    @given(arc_sets())
    def test_gaps_complement_measure(self, s):
        gap_total = sum(length for _, length in s.gaps())
        assert gap_total == s.perimeter - s.measure

    @given(arc_set_pairs())
    def test_coverage_consistent_with_measures(self, pair):
        a, b = pair
        segments = ArcSet.coverage([a, b])
        weighted = sum((e - s) * c for s, e, c in segments)
        assert weighted == a.measure + b.measure


# ---------------------------------------------------------------------------
# Feasible rotations vs brute force
# ---------------------------------------------------------------------------

class TestFeasibilityProperties:
    @settings(max_examples=40, deadline=None)
    @given(job_circles(max_period=30), job_circles(max_period=30))
    def test_pair_feasible_set_matches_brute_force(self, first, second):
        first = JobCircle.from_phases("a", first.perimeter - first.comm_ticks,
                                      first.comm_ticks)
        second = JobCircle.from_phases(
            "b", second.perimeter - second.comm_ticks, second.comm_ticks
        )
        feasible = exact_pair_feasible_rotations(first, second)
        unified = UnifiedCircle([first, second])
        for delta in range(second.perimeter):
            expected = unified.overlap_ticks({"b": delta}) == 0
            assert feasible.contains(delta) == expected

    @settings(max_examples=40, deadline=None)
    @given(arc_sets(perimeter=60), job_circles(max_period=30))
    def test_feasible_rotations_match_brute_force(self, placed, circle):
        circle = JobCircle.from_phases(
            "j", circle.perimeter - circle.comm_ticks, circle.comm_ticks
        )
        if 60 % circle.perimeter != 0:
            return  # tiling needs a divisor period
        feasible = feasible_rotations(placed, circle, 60)
        for delta in range(circle.perimeter):
            rotated = circle.rotate(delta).tiled_comm(60)
            assert feasible.contains(delta) == (
                not placed.intersects(rotated)
            )

    @settings(max_examples=25, deadline=None)
    @given(st.lists(job_circles(max_period=40), min_size=2, max_size=3))
    def test_solver_certificates_verify(self, circles):
        # Re-id to avoid duplicates.
        circles = [
            JobCircle.from_phases(
                f"j{i}", c.perimeter - c.comm_ticks, c.comm_ticks
            )
            for i, c in enumerate(circles)
        ]
        outcome = solve(circles, seed=0)
        if outcome.found:
            assert UnifiedCircle(circles).overlap_ticks(
                outcome.rotations
            ) == 0

    @settings(max_examples=25, deadline=None)
    @given(st.lists(job_circles(max_period=40), min_size=2, max_size=3))
    def test_infeasibility_by_utilization_is_sound(self, circles):
        circles = [
            JobCircle.from_phases(
                f"j{i}", c.perimeter - c.comm_ticks, c.comm_ticks
            )
            for i, c in enumerate(circles)
        ]
        unified = UnifiedCircle(circles)
        if unified.utilization_lower_bound() > 1.0:
            outcome = solve(circles, seed=0)
            assert not outcome.found


# ---------------------------------------------------------------------------
# Fluid allocation invariants
# ---------------------------------------------------------------------------

class TestAllocatorProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(0.1, 10.0),    # weight
                st.integers(0, 2),       # priority
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_single_link_conservation_and_nonneg(self, flow_params):
        link = Link("a", "b", 1e9, name="L")
        flows = [
            Flow(
                flow_id=f"f{i}", src="a", dst="b", links=[link],
                weight=w, priority=p, job_id=f"f{i}",
            )
            for i, (w, p) in enumerate(flow_params)
        ]
        alloc = FluidAllocator().allocate(flows)
        total = sum(alloc.rate_of(f) for f in flows)
        assert total <= link.capacity * (1 + 1e-9)
        assert all(alloc.rate_of(f) >= 0 for f in flows)
        # Work conservation: a saturating class exists, so the link fills.
        assert total >= link.capacity * (1 - 1e-9)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(0.1, 10.0), min_size=2, max_size=5))
    def test_single_link_weighted_shares(self, weights):
        link = Link("a", "b", 1e9, name="L")
        flows = [
            Flow(flow_id=f"f{i}", src="a", dst="b", links=[link], weight=w)
            for i, w in enumerate(weights)
        ]
        alloc = FluidAllocator().allocate(flows)
        total_weight = sum(weights)
        for flow, weight in zip(flows, weights):
            expected = link.capacity * weight / total_weight
            assert alloc.rate_of(flow) == np.float64(expected) or abs(
                alloc.rate_of(flow) - expected
            ) < 1e-3 * link.capacity

    @settings(max_examples=50, deadline=None)
    @given(
        st.dictionaries(
            st.text("xyz", min_size=1, max_size=3),
            st.tuples(st.floats(0.1, 5.0), st.floats(0.0, 1e9)),
            min_size=1,
            max_size=5,
        )
    )
    def test_wfq_never_exceeds_demand_or_capacity(self, demands):
        sched = WeightedFairScheduler(1e9)
        rates = sched.service_rates(demands)
        assert sum(rates.values()) <= 1e9 * (1 + 1e-9)
        for flow_id, (_, demand) in demands.items():
            assert rates[flow_id] <= demand * (1 + 1e-9)


# ---------------------------------------------------------------------------
# Phase simulator conservation
# ---------------------------------------------------------------------------

class TestSimulatorProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(50, 300),   # compute ms (J1)
        st.integers(20, 200),   # comm ms (J1)
        st.integers(50, 300),   # compute ms (J2)
        st.integers(20, 200),   # comm ms (J2)
        st.sampled_from(["fair", "weighted"]),
    )
    def test_bytes_conserved_and_iterations_complete(
        self, c1, m1, c2, m2, policy_name
    ):
        from repro.cc.factory import make_policy
        from repro.net.phasesim import PhaseLevelSimulator
        from repro.net.topology import Topology
        from repro.units import gbps, ms
        from repro.workloads.job import JobSpec

        cap = gbps(42)
        specs = [
            JobSpec("J1", ms(c1), ms(m1) * cap),
            JobSpec("J2", ms(c2), ms(m2) * cap),
        ]
        policy = (
            make_policy("fair")
            if policy_name == "fair"
            else make_policy("weighted", order=["J1", "J2"])
        )
        topo = Topology.dumbbell(
            hosts_per_side=2, host_capacity=cap, bottleneck_capacity=cap
        )
        sim = PhaseLevelSimulator(topo, policy)
        for i, spec in enumerate(specs):
            sim.add_job(spec, f"ha{i}", f"hb{i}", n_iterations=5)
        result = sim.run()
        for spec in specs:
            run = result.jobs[spec.job_id]
            assert len(run.records) == 5
            for record in run.records:
                moved = run.rate_trace.integrate(
                    record.comm_start, record.end
                )
                assert abs(moved - spec.comm_bytes) <= max(
                    2.0, spec.comm_bytes * 1e-6
                )
            # Iterations can never beat the dedicated-network bound.
            solo = spec.solo_iteration_time(cap)
            assert all(
                record.duration >= solo * (1 - 1e-9)
                for record in run.records
            )
