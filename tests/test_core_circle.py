"""JobCircle and UnifiedCircle tests."""

import pytest

from repro.core.circle import JobCircle
from repro.core.unified import UnifiedCircle, unified_perimeter
from repro.errors import GeometryError
from repro.units import gbps, ms
from repro.workloads.job import JobSpec


class TestJobCircle:
    def test_from_phases(self):
        c = JobCircle.from_phases("j", 141, 114)
        assert c.perimeter == 255
        assert c.comm.intervals == ((141, 255),)
        assert c.comm_ticks == 114

    def test_comm_fraction(self):
        c = JobCircle.from_phases("j", 60, 40)
        assert c.comm_fraction == pytest.approx(0.4)

    def test_zero_compute_allowed(self):
        c = JobCircle.from_phases("j", 0, 50)
        assert c.comm.is_full

    def test_zero_comm_rejected(self):
        with pytest.raises(GeometryError):
            JobCircle.from_phases("j", 100, 0)

    def test_from_arcs_multiple(self):
        c = JobCircle.from_arcs("j", 100, [(10, 5), (50, 5)])
        assert c.comm_ticks == 10

    def test_from_arcs_empty_rejected(self):
        with pytest.raises(GeometryError):
            JobCircle.from_arcs("j", 100, [])

    def test_from_job_quantizes(self):
        spec = JobSpec("j", compute_time=ms(141), comm_bytes=ms(114) * gbps(42))
        c = JobCircle.from_job(spec, gbps(42), ticks_per_second=1000)
        assert c.perimeter == 255
        assert c.comm.intervals == ((141, 255),)

    def test_from_job_vanishing_comm_rejected(self):
        spec = JobSpec("j", compute_time=ms(100), comm_bytes=1.0)
        with pytest.raises(GeometryError):
            JobCircle.from_job(spec, gbps(42), ticks_per_second=10)

    def test_rotate_returns_new_circle(self):
        c = JobCircle.from_phases("j", 60, 40)
        rotated = c.rotate(10)
        assert rotated.comm.intervals == ((0, 10), (70, 100))
        assert c.comm.intervals == ((60, 100),)

    def test_demand_validation(self):
        with pytest.raises(GeometryError):
            JobCircle.from_phases("j", 10, 10, demand=0.0)
        with pytest.raises(GeometryError):
            JobCircle.from_phases("j", 10, 10, demand=1.5)

    def test_empty_job_id_rejected(self):
        with pytest.raises(GeometryError):
            JobCircle.from_phases("", 10, 10)

    def test_tiled_comm(self):
        c = JobCircle.from_phases("j", 30, 10)
        tiled = c.tiled_comm(120)
        assert tiled.measure == 30
        assert tiled.perimeter == 120


class TestUnifiedCircle:
    def test_perimeter_is_lcm(self):
        circles = [
            JobCircle.from_phases("a", 30, 10),  # period 40
            JobCircle.from_phases("b", 45, 15),  # period 60
        ]
        assert unified_perimeter(circles) == 120
        assert UnifiedCircle(circles).perimeter == 120

    def test_paper_figure5_example(self):
        # LCM(40, 60) = 120, with 3 and 2 phases per revolution.
        circles = [
            JobCircle.from_phases("J1", 30, 10),
            JobCircle.from_phases("J2", 50, 10),
        ]
        unified = UnifiedCircle(circles)
        tiled = unified.tiled()
        assert len(tiled["J1"].intervals) == 3
        assert len(tiled["J2"].intervals) == 2

    def test_duplicate_ids_rejected(self):
        c = JobCircle.from_phases("same", 10, 10)
        with pytest.raises(GeometryError):
            UnifiedCircle([c, c])

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            unified_perimeter([])

    def test_rotations_are_periodic_in_own_perimeter(self):
        circles = [
            JobCircle.from_phases("a", 30, 10),
            JobCircle.from_phases("b", 45, 15),
        ]
        unified = UnifiedCircle(circles)
        assert unified.tiled({"a": 0}) == unified.tiled({"a": 40})
        assert unified.tiled({"b": 7}) == unified.tiled({"b": 67})

    def test_overlap_ticks_zero_when_disjoint(self):
        circles = [
            JobCircle.from_phases("a", 80, 20),
            JobCircle.from_phases("b", 80, 20),
        ]
        unified = UnifiedCircle(circles)
        assert unified.overlap_ticks({"b": 50}) == 0
        assert unified.max_coverage({"b": 50}) == 1

    def test_overlap_ticks_full_collision(self):
        circles = [
            JobCircle.from_phases("a", 80, 20),
            JobCircle.from_phases("b", 80, 20),
        ]
        unified = UnifiedCircle(circles)
        assert unified.overlap_ticks() == 20
        assert unified.max_coverage() == 2

    def test_capacity_two_tolerates_pairs(self):
        circles = [
            JobCircle.from_phases("a", 80, 20),
            JobCircle.from_phases("b", 80, 20),
        ]
        unified = UnifiedCircle(circles)
        assert unified.overlap_ticks(capacity=2) == 0

    def test_total_comm_ticks_counts_tiles(self):
        circles = [
            JobCircle.from_phases("a", 30, 10),  # 3 tiles of 10 on 120
            JobCircle.from_phases("b", 45, 15),  # 2 tiles of 15
        ]
        assert UnifiedCircle(circles).total_comm_ticks() == 60

    def test_utilization_lower_bound(self):
        circles = [
            JobCircle.from_phases("a", 40, 60),
            JobCircle.from_phases("b", 40, 60),
        ]
        assert UnifiedCircle(circles).utilization_lower_bound() == (
            pytest.approx(1.2)
        )

    def test_circle_of_lookup(self):
        circles = [JobCircle.from_phases("a", 10, 10)]
        unified = UnifiedCircle(circles)
        assert unified.circle_of("a") is circles[0]
        with pytest.raises(GeometryError):
            unified.circle_of("ghost")

    def test_job_ids_order(self):
        circles = [
            JobCircle.from_phases("z", 10, 10),
            JobCircle.from_phases("a", 10, 10),
        ]
        assert UnifiedCircle(circles).job_ids == ["z", "a"]
