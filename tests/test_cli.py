"""CLI tests."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command(self):
        args = build_parser().parse_args(["run", "figure3"])
        assert args.command == "run"
        assert args.artifact == "figure3"
        assert args.jobs == 1
        assert args.no_cache is False

    def test_run_jobs_and_no_cache(self):
        args = build_parser().parse_args(
            ["run", "figure1", "--jobs", "8", "--no-cache"]
        )
        assert args.jobs == 8
        assert args.no_cache is True

    def test_cache_command(self):
        args = build_parser().parse_args(["cache", "--clear"])
        assert args.command == "cache"
        assert args.clear is True
        assert args.stats is False

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_cheap_artifact(self, capsys):
        assert main(["run", "figure3"]) == 0
        out = capsys.readouterr().out
        assert "255 ms" in out

    def test_run_figure5(self, capsys):
        assert main(["run", "figure5"]) == 0
        assert "LCM" in capsys.readouterr().out

    def test_every_artifact_registered_with_description(self):
        for name, (description, runner) in EXPERIMENTS.items():
            assert description
            assert callable(runner)

    def test_cache_stats_and_clear(self, capsys, tmp_path):
        assert main(["cache", "--runs-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries: 0" in out
        assert main(
            ["cache", "--clear", "--runs-dir", str(tmp_path)]
        ) == 0
        assert "cleared 0" in capsys.readouterr().out

    def test_second_run_served_from_cache(self, capsys, tmp_path):
        args = ["run", "sweep", "--runs-dir", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "cache hit(s)" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "0 executed" in second
