"""CLI tests."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command(self):
        args = build_parser().parse_args(["run", "figure3"])
        assert args.command == "run"
        assert args.artifact == "figure3"

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_cheap_artifact(self, capsys):
        assert main(["run", "figure3"]) == 0
        out = capsys.readouterr().out
        assert "255 ms" in out

    def test_run_figure5(self, capsys):
        assert main(["run", "figure5"]) == 0
        assert "LCM" in capsys.readouterr().out

    def test_every_artifact_registered_with_description(self):
        for name, (description, runner) in EXPERIMENTS.items():
            assert description
            assert callable(runner)
