"""Tests for trace profiling, analytic prediction, convergence detection
and the ASCII circle renderer."""

import numpy as np
import pytest

from repro.analysis.circleplot import render_coverage_band, render_unified
from repro.analysis.convergence import (
    detect_convergence,
    iterations_to_reach,
)
from repro.cc.fair import FairSharing
from repro.cc.weighted import StaticWeighted
from repro.core.circle import JobCircle
from repro.core.prediction import (
    fair_lockstep_iteration_time,
    steady_period_lower_bound,
    unfairness_speedup_estimate,
)
from repro.errors import GeometryError, SimulationError, WorkloadError
from repro.net.phasesim import PhaseLevelSimulator
from repro.net.topology import Topology
from repro.sim.trace import StepFunction
from repro.units import gbps, ms
from repro.workloads.job import JobSpec
from repro.workloads.profiler import on_off_phases, profile_trace
from repro.workloads.traces import demand_trace

CAP = gbps(42)


class TestProfiler:
    def _spec(self, compute_ms=141, comm_ms=114):
        return JobSpec(
            "j", compute_time=ms(compute_ms),
            comm_bytes=ms(comm_ms) * CAP,
        )

    def test_recovers_synthetic_trace(self):
        spec = self._spec()
        trace = demand_trace(spec, CAP, n_iterations=6)
        profile = profile_trace(trace, 0.0, 6 * 0.255)
        assert profile.iteration_time == pytest.approx(0.255, rel=1e-6)
        assert profile.comm_time == pytest.approx(0.114, rel=1e-6)
        assert profile.compute_time == pytest.approx(0.141, rel=1e-6)
        assert profile.bandwidth_demand == pytest.approx(CAP, rel=1e-6)

    def test_recovers_simulated_solo_run(self):
        spec = self._spec(100, 60)
        topo = Topology.dumbbell(host_capacity=CAP, bottleneck_capacity=CAP)
        sim = PhaseLevelSimulator(topo, FairSharing())
        run = sim.add_job(spec, "ha0", "hb0", n_iterations=8)
        result = sim.run()
        profile = profile_trace(run.rate_trace, 0.0, result.duration)
        assert profile.iteration_time == pytest.approx(0.160, rel=1e-3)
        assert profile.comm_fraction == pytest.approx(0.375, rel=1e-2)

    def test_circle_ticks_quantization(self):
        spec = self._spec()
        trace = demand_trace(spec, CAP, n_iterations=6)
        profile = profile_trace(trace, 0.0, 6 * 0.255)
        assert profile.circle_ticks(1000) == (141, 114)

    def test_phases_segmentation(self):
        spec = self._spec(100, 50)
        trace = demand_trace(spec, CAP, n_iterations=2)
        phases = on_off_phases(trace, 0.0, 0.3)
        states = [state for _, _, state in phases]
        assert states == [False, True, False, True]

    def test_too_few_cycles_rejected(self):
        spec = self._spec()
        trace = demand_trace(spec, CAP, n_iterations=2)
        with pytest.raises(WorkloadError):
            profile_trace(trace, 0.0, 2 * 0.255)

    def test_silent_trace_rejected(self):
        with pytest.raises(WorkloadError):
            profile_trace(StepFunction(0.0), 0.0, 1.0)

    def test_bad_window_rejected(self):
        with pytest.raises(WorkloadError):
            on_off_phases(StepFunction(0.0), 1.0, 0.5)


class TestPrediction:
    def test_fair_lockstep_matches_simulator(self):
        specs = [
            JobSpec("a", ms(100), ms(110) * CAP),
            JobSpec("b", ms(100), ms(110) * CAP),
        ]
        predicted = fair_lockstep_iteration_time(specs, CAP)
        topo = Topology.dumbbell(
            hosts_per_side=2, host_capacity=CAP, bottleneck_capacity=CAP
        )
        sim = PhaseLevelSimulator(topo, FairSharing())
        for i, spec in enumerate(specs):
            sim.add_job(spec, f"ha{i}", f"hb{i}", n_iterations=5)
        result = sim.run()
        assert result.mean_iteration_time("a") == pytest.approx(
            predicted, rel=1e-9
        )

    def test_dlrm_speedup_estimate_matches_paper(self):
        specs = [
            JobSpec("a", ms(701), ms(300) * CAP),
            JobSpec("b", ms(701), ms(300) * CAP),
        ]
        assert unfairness_speedup_estimate(specs, CAP) == pytest.approx(
            1.30, abs=0.005
        )

    def test_lower_bound_holds_in_simulation(self):
        specs = [
            JobSpec("a", ms(100), ms(110) * CAP),
            JobSpec("b", ms(100), ms(110) * CAP),
        ]
        bound = steady_period_lower_bound(specs[0], specs, CAP)
        topo = Topology.dumbbell(
            hosts_per_side=2, host_capacity=CAP, bottleneck_capacity=CAP
        )
        sim = PhaseLevelSimulator(
            topo, StaticWeighted.from_aggressiveness_order(["a", "b"])
        )
        for i, spec in enumerate(specs):
            sim.add_job(spec, f"ha{i}", f"hb{i}", n_iterations=30)
        result = sim.run()
        steady = result.mean_iteration_time("a", skip=20)
        assert steady >= bound * 0.999

    def test_mismatched_specs_rejected(self):
        specs = [
            JobSpec("a", ms(100), ms(110) * CAP),
            JobSpec("b", ms(200), ms(110) * CAP),
        ]
        with pytest.raises(WorkloadError):
            fair_lockstep_iteration_time(specs, CAP)

    def test_sharers_must_include_job(self):
        a = JobSpec("a", ms(100), ms(110) * CAP)
        b = JobSpec("b", ms(100), ms(110) * CAP)
        with pytest.raises(WorkloadError):
            steady_period_lower_bound(a, [b], CAP)


class TestConvergence:
    def test_detects_settled_tail(self):
        series = [0.40, 0.35, 0.31, 0.30, 0.30, 0.30, 0.30]
        result = detect_convergence(series, tolerance=0.02)
        assert result.converged
        assert result.iteration == 3
        assert result.steady_value == pytest.approx(0.30)

    def test_flat_series_converges_at_zero(self):
        result = detect_convergence([1.0] * 6)
        assert result.converged and result.iteration == 0

    def test_noisy_series_does_not_converge(self):
        rng = np.random.default_rng(0)
        series = 1.0 + 0.5 * rng.random(20)
        result = detect_convergence(series, tolerance=0.01)
        assert not result.converged

    def test_iterations_to_reach(self):
        series = [0.40, 0.33, 0.31, 0.30, 0.30, 0.30]
        assert iterations_to_reach(series, 0.30, tolerance=0.05) == 2

    def test_target_never_reached(self):
        assert iterations_to_reach([1.0, 1.0], 0.1) is None

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            detect_convergence([])
        with pytest.raises(SimulationError):
            iterations_to_reach([], 1.0)

    def test_slide_convergence_in_simulation(self):
        # A fully compatible pair settles to its solo time within a
        # handful of iterations under unfairness (the Figure 2 claim).
        specs = [
            JobSpec("a", ms(210), ms(90) * CAP),
            JobSpec("b", ms(210), ms(90) * CAP),
        ]
        topo = Topology.dumbbell(
            hosts_per_side=2, host_capacity=CAP, bottleneck_capacity=CAP
        )
        sim = PhaseLevelSimulator(
            topo, StaticWeighted.from_aggressiveness_order(["a", "b"])
        )
        for i, spec in enumerate(specs):
            sim.add_job(spec, f"ha{i}", f"hb{i}", n_iterations=30)
        result = sim.run()
        convergence = detect_convergence(
            result.iteration_times("b"), tolerance=0.02
        )
        assert convergence.converged
        assert convergence.iteration <= 8
        assert convergence.steady_value == pytest.approx(0.30, rel=0.02)
        reach = iterations_to_reach(
            result.iteration_times("b"), 0.30, tolerance=0.02
        )
        assert reach is not None and reach <= 8


class TestCirclePlot:
    def _pair(self):
        return [
            JobCircle.from_phases("J1", 30, 10),
            JobCircle.from_phases("J2", 50, 10),
        ]

    def test_render_unified_contains_symbols_and_legend(self):
        art = render_unified(self._pair(), {"J2": 10}, size=15)
        assert "#" in art and "*" in art
        assert "J1" in art and "J2" in art
        assert "120 ticks" in art

    def test_coverage_band_flags_collisions(self):
        band_bad = render_coverage_band(self._pair())
        band_good = render_coverage_band(self._pair(), {"J2": 10})
        assert "!" in band_bad
        assert "!" not in band_good

    def test_capacity_two_band(self):
        circles = [
            JobCircle.from_phases("a", 40, 60),
            JobCircle.from_phases("b", 40, 60),
        ]
        band = render_coverage_band(circles, capacity=2)
        assert "!" not in band
        assert "2" in band

    def test_bad_args_rejected(self):
        with pytest.raises(GeometryError):
            render_unified([], size=15)
        with pytest.raises(GeometryError):
            render_unified(self._pair(), size=3)
        with pytest.raises(GeometryError):
            render_coverage_band(self._pair(), width=2)
