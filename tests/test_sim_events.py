"""Event-queue tests: ordering, cancellation, the executed-event guard."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue


def _noop():
    pass


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        fired = []
        q.push(2.0, fired.append, ("b",))
        q.push(1.0, fired.append, ("a",))
        q.push(3.0, fired.append, ("c",))
        while q:
            e = q.pop()
            e.fn(*e.args)
        assert fired == ["a", "b", "c"]

    def test_fifo_at_equal_time(self):
        q = EventQueue()
        first = q.push(1.0, _noop)
        second = q.push(1.0, _noop)
        assert q.pop() is first
        assert q.pop() is second

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        low = q.push(1.0, _noop, priority=1)
        high = q.push(1.0, _noop, priority=0)
        assert q.pop() is high
        assert q.pop() is low


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        victim = q.push(1.0, _noop)
        survivor = q.push(2.0, _noop)
        q.cancel(victim)
        assert len(q) == 1
        assert q.pop() is survivor

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        victim = q.push(1.0, _noop)
        q.push(2.0, _noop)
        q.cancel(victim)
        q.cancel(victim)
        assert len(q) == 1

    def test_cancel_executed_event_is_noop(self):
        # Regression: cancelling a stale (already-fired) handle must not
        # corrupt the live count and drain the queue early.
        q = EventQueue()
        first = q.push(1.0, _noop)
        q.push(2.0, _noop)
        assert q.pop() is first
        q.cancel(first)
        assert len(q) == 1
        assert q.pop().time == 2.0

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        victim = q.push(1.0, _noop)
        q.push(5.0, _noop)
        q.cancel(victim)
        assert q.peek_time() == 5.0


class TestEdgeCases:
    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None

    def test_bool_reflects_live_events(self):
        q = EventQueue()
        assert not q
        event = q.push(1.0, _noop)
        assert q
        q.cancel(event)
        assert not q

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, _noop)
        q.push(2.0, _noop)
        q.clear()
        assert len(q) == 0
        assert q.peek_time() is None

    def test_event_repr_mentions_state(self):
        event = Event(1.0, 0, 0, _noop, ())
        assert "pending" in repr(event)
        event.cancel()
        assert "cancelled" in repr(event)
