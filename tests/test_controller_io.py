"""Tests for the congestion-free controller, JSON serialization, and
bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.analysis.bootstrap import (
    bootstrap_median,
    bootstrap_median_ratio,
)
from repro.cc.adaptive import AdaptiveUnfair
from repro.cc.priority import PrioritySharing
from repro.core.circle import JobCircle
from repro.core.compatibility import CompatibilityChecker
from repro.errors import ConfigError, SimulationError
from repro.io import (
    circle_from_dict,
    circle_to_dict,
    job_spec_from_dict,
    job_spec_to_dict,
    load_workload,
    result_from_dict,
    result_to_dict,
    save_workload,
)
from repro.mechanisms.controller import (
    CongestionFreeController,
    Mechanism,
)
from repro.net.topology import Topology
from repro.scheduler.cluster import ClusterState
from repro.scheduler.simulation import ClusterSimulation
from repro.units import gbps, ms
from repro.workloads.job import JobSpec

CAP = gbps(42)


def _cluster_with(specs_and_hosts):
    topo = Topology.leaf_spine(
        n_racks=4, hosts_per_rack=2, n_spines=1,
        host_capacity=CAP, uplink_capacity=CAP,
    )
    cluster = ClusterState(topo, gpus_per_host=4)
    for spec, hosts in specs_and_hosts:
        cluster.place(spec, hosts)
    return cluster


def _compatible_pair():
    a = JobSpec("a", ms(210), ms(90) * CAP, n_workers=2)
    b = JobSpec("b", ms(210), ms(90) * CAP, n_workers=2)
    return [
        (a, ["h0_0", "h1_0"]),
        (b, ["h0_1", "h1_1"]),
    ]


def _incompatible_pair():
    a = JobSpec("a", ms(100), ms(110) * CAP, n_workers=2)
    b = JobSpec("b", ms(100), ms(110) * CAP, n_workers=2)
    return [
        (a, ["h0_0", "h1_0"]),
        (b, ["h0_1", "h1_1"]),
    ]


class TestController:
    def test_flow_scheduling_plan_for_compatible_cluster(self):
        cluster = _cluster_with(_compatible_pair())
        plan = CongestionFreeController(
            checker=CompatibilityChecker(capacity=CAP)
        ).plan(cluster, mechanism=Mechanism.FLOW_SCHEDULING)
        assert plan.mechanism is Mechanism.FLOW_SCHEDULING
        assert plan.fully_congestion_free
        assert set(plan.gates) == {"a", "b"}
        assert plan.rotations

    def test_plan_runs_at_solo_speed(self):
        cluster = _cluster_with(_compatible_pair())
        controller = CongestionFreeController(
            checker=CompatibilityChecker(capacity=CAP)
        )
        plan = controller.plan(cluster)
        report = ClusterSimulation(
            cluster, reference_capacity=CAP
        ).run(plan.policy, n_iterations=40, gates=plan.gates, stagger=0.0)
        assert report.mean_slowdown == pytest.approx(1.0, abs=0.02)

    def test_incompatible_cluster_falls_back_to_adaptive(self):
        cluster = _cluster_with(_incompatible_pair())
        plan = CongestionFreeController(
            checker=CompatibilityChecker(capacity=CAP)
        ).plan(cluster)
        assert plan.mechanism is Mechanism.ADAPTIVE
        assert isinstance(plan.policy, AdaptiveUnfair)
        assert not plan.fully_congestion_free
        assert plan.gates == {}

    def test_priorities_mechanism(self):
        cluster = _cluster_with(_compatible_pair())
        plan = CongestionFreeController(
            checker=CompatibilityChecker(capacity=CAP)
        ).plan(cluster, mechanism=Mechanism.PRIORITIES)
        assert plan.mechanism is Mechanism.PRIORITIES
        assert isinstance(plan.policy, PrioritySharing)

    def test_weighted_mechanism(self):
        cluster = _cluster_with(_compatible_pair())
        plan = CongestionFreeController(
            checker=CompatibilityChecker(capacity=CAP)
        ).plan(cluster, mechanism=Mechanism.WEIGHTED)
        assert plan.mechanism is Mechanism.WEIGHTED

    def test_uncontended_cluster_gets_adaptive_default(self):
        a = JobSpec("a", ms(210), ms(90) * CAP, n_workers=2)
        cluster = _cluster_with([(a, ["h0_0", "h1_0"])])
        plan = CongestionFreeController(
            checker=CompatibilityChecker(capacity=CAP)
        ).plan(cluster)
        assert plan.compatible_links == []
        assert plan.incompatible_links == []

    def test_per_link_mode_downgrades_flow_scheduling(self):
        cluster = _cluster_with(_compatible_pair())
        plan = CongestionFreeController(
            checker=CompatibilityChecker(capacity=CAP)
        ).plan(
            cluster,
            mechanism=Mechanism.FLOW_SCHEDULING,
            cluster_level=False,
        )
        # Without the global rotation solve, gates cannot be trusted.
        assert plan.mechanism is Mechanism.PRIORITIES


class TestIo:
    def test_job_spec_roundtrip(self):
        spec = JobSpec(
            "j", ms(100), ms(50) * CAP, model_name="vgg19",
            batch_size=1200, compute_jitter=0.02, n_workers=8,
        )
        assert job_spec_from_dict(job_spec_to_dict(spec)) == spec

    def test_multi_phase_spec_roundtrip(self):
        spec = JobSpec.multi_phase(
            "mp", [(ms(50), ms(20) * CAP), (ms(30), ms(15) * CAP)]
        )
        restored = job_spec_from_dict(job_spec_to_dict(spec))
        assert restored.segments == spec.segments

    def test_circle_roundtrip(self):
        circle = JobCircle.from_arcs(
            "c", 255, [(141, 100), (245, 10)], demand=0.7
        )
        restored = circle_from_dict(circle_to_dict(circle))
        assert restored.comm == circle.comm
        assert restored.demand == circle.demand

    def test_result_roundtrip(self):
        checker = CompatibilityChecker(capacity=CAP)
        result = checker.check([
            JobSpec("a", ms(210), ms(90) * CAP),
            JobSpec("b", ms(210), ms(90) * CAP),
        ])
        restored = result_from_dict(result_to_dict(result))
        assert restored == result

    def test_workload_file_roundtrip(self, tmp_path):
        specs = [
            JobSpec("a", ms(100), ms(50) * CAP),
            JobSpec.multi_phase("b", [(ms(10), 1e6), (ms(20), 2e6)]),
        ]
        path = tmp_path / "workload.json"
        save_workload(specs, path)
        assert load_workload(path) == specs

    def test_missing_field_rejected(self):
        with pytest.raises(ConfigError):
            job_spec_from_dict({"version": 1})

    def test_unknown_version_rejected(self):
        with pytest.raises(ConfigError):
            job_spec_from_dict({"version": 99, "job_id": "x"})

    def test_workload_file_without_jobs_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 1}')
        with pytest.raises(ConfigError):
            load_workload(path)


class TestBootstrap:
    def test_median_ci_brackets_truth(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(0.30, 0.01, size=300)
        ci = bootstrap_median(samples, seed=2)
        assert ci.contains(0.30)
        assert ci.low < ci.estimate < ci.high

    def test_tight_data_tight_interval(self):
        ci = bootstrap_median([1.0] * 50, seed=0)
        assert ci.low == ci.high == ci.estimate == 1.0

    def test_ratio_ci(self):
        rng = np.random.default_rng(3)
        fair = rng.normal(0.32, 0.01, size=200)
        unfair = rng.normal(0.26, 0.01, size=200)
        ci = bootstrap_median_ratio(fair, unfair, seed=4)
        assert ci.contains(0.32 / 0.26)
        assert 1.1 < ci.estimate < 1.4

    def test_str_format(self):
        ci = bootstrap_median([1.0, 2.0, 3.0], seed=0)
        assert "@95%" in str(ci)

    def test_bad_inputs_rejected(self):
        with pytest.raises(SimulationError):
            bootstrap_median([])
        with pytest.raises(SimulationError):
            bootstrap_median([1.0], n_resamples=5)
        with pytest.raises(SimulationError):
            bootstrap_median([1.0], confidence=0.4)
        with pytest.raises(SimulationError):
            bootstrap_median_ratio([1.0], [0.0])
