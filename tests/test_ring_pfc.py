"""Tests for ring-allreduce multi-flow jobs and the PFC switch model."""

import numpy as np
import pytest

from repro.cc.dcqcn import DcqcnFluidSimulator, DcqcnParams
from repro.cc.fair import FairSharing
from repro.cc.weighted import StaticWeighted
from repro.errors import ConfigError
from repro.net.phasesim import PhaseLevelSimulator
from repro.net.topology import Topology
from repro.units import gbps, kib, ms
from repro.workloads.job import JobSpec

CAP = gbps(42)


def _leaf_spine(n_racks=3):
    return Topology.leaf_spine(
        n_racks=n_racks, hosts_per_rack=2, n_spines=1,
        host_capacity=CAP, uplink_capacity=CAP,
    )


class TestRingJobs:
    def test_solo_ring_runs_at_full_rate(self):
        sim = PhaseLevelSimulator(_leaf_spine(), FairSharing())
        spec = JobSpec("ring", ms(100), ms(50) * CAP, n_workers=3)
        run = sim.add_ring_job(
            spec, ["h0_0", "h1_0", "h2_0"], n_iterations=4
        )
        result = sim.run()
        assert len(run.flows) == 3
        np.testing.assert_allclose(
            result.iteration_times("ring"), ms(150), rtol=1e-9
        )

    def test_ring_advances_at_slowest_hop(self):
        # A narrow uplink on one hop throttles the whole collective.
        topo = Topology.leaf_spine(
            n_racks=2, hosts_per_rack=2, n_spines=1,
            host_capacity=CAP, uplink_capacity=CAP,
        )
        # Shrink one direction of rack 1's uplink to half capacity.
        narrow = topo.link("tor1", "spine0")
        narrow.capacity = CAP / 2
        sim = PhaseLevelSimulator(topo, FairSharing())
        spec = JobSpec("ring", ms(100), ms(50) * CAP, n_workers=2)
        sim.add_ring_job(spec, ["h0_0", "h1_0"], n_iterations=3)
        result = sim.run()
        # The h1->h0 hop is capped at CAP/2, so comm takes 100 ms.
        np.testing.assert_allclose(
            result.iteration_times("ring"), ms(200), rtol=1e-9
        )

    def test_two_rings_share_the_common_uplink(self):
        sim = PhaseLevelSimulator(_leaf_spine(2), FairSharing())
        a = JobSpec("ra", ms(100), ms(50) * CAP, n_workers=2)
        b = JobSpec("rb", ms(100), ms(50) * CAP, n_workers=2)
        sim.add_ring_job(a, ["h0_0", "h1_0"], n_iterations=6)
        sim.add_ring_job(b, ["h0_1", "h1_1"], n_iterations=6)
        result = sim.run()
        for job in ("ra", "rb"):
            np.testing.assert_allclose(
                result.iteration_times(job), ms(200), rtol=1e-9
            )

    def test_unfairness_interleaves_ring_jobs_too(self):
        def build(policy):
            sim = PhaseLevelSimulator(_leaf_spine(2), policy)
            a = JobSpec("ra", ms(210), ms(90) * CAP, n_workers=2)
            b = JobSpec("rb", ms(210), ms(90) * CAP, n_workers=2)
            sim.add_ring_job(a, ["h0_0", "h1_0"], n_iterations=25)
            sim.add_ring_job(b, ["h0_1", "h1_1"], n_iterations=25)
            return sim.run()

        fair = build(FairSharing())
        unfair = build(
            StaticWeighted.from_aggressiveness_order(["ra", "rb"])
        )
        for job in ("ra", "rb"):
            assert unfair.mean_iteration_time(job, skip=10) < (
                fair.mean_iteration_time(job, skip=10)
            )
        # Steady state reaches solo speed (compatible pair).
        assert unfair.mean_iteration_time("ra", skip=15) == pytest.approx(
            ms(300), rel=0.02
        )

    def test_ring_bytes_conserved(self):
        sim = PhaseLevelSimulator(_leaf_spine(), FairSharing())
        spec = JobSpec("ring", ms(100), ms(50) * CAP, n_workers=3)
        run = sim.add_ring_job(
            spec, ["h0_0", "h1_0", "h2_0"], n_iterations=3
        )
        result = sim.run()
        for record in run.records:
            moved = run.rate_trace.integrate(record.comm_start, record.end)
            assert moved == pytest.approx(spec.comm_bytes, rel=1e-6)

    def test_ring_needs_two_distinct_hosts(self):
        sim = PhaseLevelSimulator(_leaf_spine(), FairSharing())
        spec = JobSpec("ring", ms(100), ms(50) * CAP)
        with pytest.raises(ConfigError):
            sim.add_ring_job(spec, ["h0_0"], n_iterations=1)
        with pytest.raises(ConfigError):
            sim.add_ring_job(spec, ["h0_0", "h0_0"], n_iterations=1)

    def test_same_host_pairs_skipped(self):
        sim = PhaseLevelSimulator(_leaf_spine(), FairSharing())
        spec = JobSpec("ring", ms(100), ms(50) * CAP)
        run = sim.add_ring_job(
            spec, ["h0_0", "h0_0", "h1_0"], n_iterations=1
        )
        # h0_0 -> h0_0 skipped; h0_0 -> h1_0 and h1_0 -> h0_0 remain.
        assert len(run.flows) == 2


class TestPfc:
    def _sim(self, **kwargs):
        sim = DcqcnFluidSimulator(
            capacity=gbps(50),
            pfc_pause_threshold=kib(600),
            **kwargs,
        )
        params = DcqcnParams()
        sim.add_sender("a", params, np.random.default_rng(1))
        sim.add_sender("b", params, np.random.default_rng(2))
        return sim

    def test_queue_bounded_by_pause_threshold(self):
        sim = self._sim()
        result = sim.run(0.05)
        # One step of headroom: both senders at line rate for dt.
        headroom = 2 * gbps(50) * sim.dt
        assert result.queue_series.values.max() <= kib(600) + headroom

    def test_pause_time_accounted(self):
        sim = self._sim()
        sim.run(0.05)
        assert sim.pfc_pause_seconds >= 0.0

    def test_dcqcn_keeps_pfc_mostly_idle(self):
        # DCQCN's job: ECN kicks in well below the PFC threshold, so
        # pauses should be a tiny fraction of the run.
        sim = self._sim()
        sim.run(0.1)
        assert sim.pfc_pause_seconds < 0.01

    def test_without_dcqcn_reaction_pfc_fires(self):
        # Disable marking (no CNPs): senders stay at line rate and the
        # lossless fabric must pause.
        from repro.switches.ecn import RedEcnMarker

        sim = DcqcnFluidSimulator(
            capacity=gbps(50),
            marker=RedEcnMarker(kmin=1e12, kmax=2e12, pmax=0.001),
            pfc_pause_threshold=kib(600),
        )
        params = DcqcnParams()
        sim.add_sender("a", params, np.random.default_rng(1))
        sim.add_sender("b", params, np.random.default_rng(2))
        sim.run(0.05)
        assert sim.pfc_pause_seconds > 0.005

    def test_resume_threshold_validation(self):
        with pytest.raises(ConfigError):
            DcqcnFluidSimulator(
                pfc_pause_threshold=kib(100),
                pfc_resume_threshold=kib(200),
            )
        with pytest.raises(ConfigError):
            DcqcnFluidSimulator(pfc_pause_threshold=0.0)

    def test_default_resume_is_half_pause(self):
        sim = DcqcnFluidSimulator(pfc_pause_threshold=kib(400))
        assert sim.pfc_resume_threshold == pytest.approx(kib(200))

    def test_pfc_disabled_by_default(self):
        sim = DcqcnFluidSimulator()
        assert sim.pfc_pause_threshold is None
        params = DcqcnParams()
        sim.add_sender("a", params, np.random.default_rng(1))
        sim.run(0.01)
        assert sim.pfc_pause_seconds == 0.0
