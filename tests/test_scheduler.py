"""Scheduler tests: cluster state, placement policies, cluster simulation,
dynamic replay."""

import pytest

from repro.cc.adaptive import AdaptiveUnfair
from repro.cc.fair import FairSharing
from repro.core.compatibility import CompatibilityChecker
from repro.errors import PlacementError
from repro.net.topology import Topology
from repro.scheduler.cluster import ClusterState
from repro.scheduler.events import JobArrival, arrival_schedule, replay
from repro.scheduler.placement import (
    CompatibilityAwarePlacement,
    ConsolidatedPlacement,
    RandomPlacement,
)
from repro.scheduler.simulation import ClusterSimulation
from repro.units import gbps, ms
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.job import JobSpec

CAP = gbps(42)


def _cluster(n_racks=3, hosts_per_rack=2, gpus=4):
    topo = Topology.leaf_spine(
        n_racks=n_racks, hosts_per_rack=hosts_per_rack, n_spines=1,
        host_capacity=CAP, uplink_capacity=CAP,
    )
    return ClusterState(topo, gpus_per_host=gpus)


def _job(name, compute_ms=200, comm_ms=50, workers=2):
    return JobSpec(
        job_id=name, compute_time=ms(compute_ms),
        comm_bytes=ms(comm_ms) * CAP, n_workers=workers,
    )


class TestClusterState:
    def test_initial_capacity(self):
        cluster = _cluster(n_racks=2, hosts_per_rack=2, gpus=4)
        assert cluster.total_free_gpus() == 16
        assert cluster.free_gpus("h0_0") == 4

    def test_place_deducts_gpus(self):
        cluster = _cluster()
        cluster.place(_job("j"), ["h0_0", "h0_0", "h0_1"])
        assert cluster.free_gpus("h0_0") == 2
        assert cluster.free_gpus("h0_1") == 3

    def test_cross_rack_job_has_links(self):
        cluster = _cluster()
        job = cluster.place(_job("j"), ["h0_0", "h1_0"])
        assert job.uses_network
        link_names = {l.name for l in job.links}
        assert any(name.startswith("up_") for name in link_names)

    def test_rack_local_job_has_tor_links_only(self):
        cluster = _cluster()
        job = cluster.place(_job("j"), ["h0_0", "h0_1"])
        assert all("spine" not in l.src and "spine" not in l.dst
                   for l in job.links)

    def test_single_host_job_no_links(self):
        cluster = _cluster()
        job = cluster.place(_job("j"), ["h0_0", "h0_0"])
        assert not job.uses_network

    def test_overcommit_rejected(self):
        cluster = _cluster(gpus=1)
        with pytest.raises(PlacementError):
            cluster.place(_job("j"), ["h0_0", "h0_0"])

    def test_duplicate_placement_rejected(self):
        cluster = _cluster()
        cluster.place(_job("j"), ["h0_0"])
        with pytest.raises(PlacementError):
            cluster.place(_job("j"), ["h0_1"])

    def test_remove_frees_gpus(self):
        cluster = _cluster()
        cluster.place(_job("j"), ["h0_0", "h0_0"])
        cluster.remove("j")
        assert cluster.free_gpus("h0_0") == 4

    def test_remove_unknown_rejected(self):
        with pytest.raises(PlacementError):
            _cluster().remove("ghost")

    def test_link_sharing_map(self):
        cluster = _cluster()
        cluster.place(_job("a"), ["h0_0", "h1_0"])
        cluster.place(_job("b"), ["h0_1", "h1_1"])
        sharing = cluster.link_sharing()
        shared = [jobs for jobs in sharing.values() if len(jobs) == 2]
        assert shared  # both jobs cross the same rack uplink

    def test_hosts_by_rack(self):
        racks = _cluster(n_racks=2, hosts_per_rack=2).hosts_by_rack()
        assert set(racks) == {"tor0", "tor1"}
        assert racks["tor0"] == ["h0_0", "h0_1"]


class TestPlacementPolicies:
    def test_random_respects_capacity(self):
        cluster = _cluster()
        policy = RandomPlacement(seed=1)
        hosts = policy.place(cluster, _job("j"), 5)
        assert len(hosts) == 5
        cluster.place(_job("j"), hosts)  # must not raise

    def test_random_deterministic(self):
        a = RandomPlacement(seed=2).place(_cluster(), _job("j"), 4)
        b = RandomPlacement(seed=2).place(_cluster(), _job("j"), 4)
        assert a == b

    def test_random_rejects_oversized(self):
        with pytest.raises(PlacementError):
            RandomPlacement().place(_cluster(n_racks=1), _job("j"), 100)

    def test_consolidated_prefers_single_rack(self):
        cluster = _cluster()
        hosts = ConsolidatedPlacement().place(cluster, _job("j"), 6)
        racks = {cluster.topology.rack_of(h) for h in hosts}
        assert len(racks) == 1

    def test_consolidated_picks_tightest_fit(self):
        cluster = _cluster(n_racks=2)
        # Fragment rack 0 so only 3 slots remain there.
        cluster.place(_job("filler", workers=5),
                      ["h0_0"] * 4 + ["h0_1"])
        hosts = ConsolidatedPlacement().place(cluster, _job("j"), 3)
        racks = {cluster.topology.rack_of(h) for h in hosts}
        assert racks == {"tor0"}  # tightest rack that fits

    def test_consolidated_spills_when_needed(self):
        cluster = _cluster(n_racks=2, hosts_per_rack=1, gpus=4)
        hosts = ConsolidatedPlacement().place(cluster, _job("j"), 6)
        racks = {cluster.topology.rack_of(h) for h in hosts}
        assert len(racks) == 2

    def test_consolidated_rejects_oversized(self):
        with pytest.raises(PlacementError):
            ConsolidatedPlacement().place(
                _cluster(n_racks=1, hosts_per_rack=1), _job("j"), 100
            )

    def test_compat_aware_prefers_rack_local(self):
        cluster = _cluster()
        hosts = CompatibilityAwarePlacement().place(cluster, _job("j"), 4)
        racks = {cluster.topology.rack_of(h) for h in hosts}
        assert len(racks) == 1

    def test_compat_aware_avoids_incompatible_neighbour(self):
        cluster = _cluster(n_racks=3, hosts_per_rack=1, gpus=8)
        # Resident comm-heavy job on racks 0-1 (incompatible with compute
        # heavy newcomers: utilization over 1 when they share).
        resident = JobSpec(
            "B-res", compute_time=ms(100),
            comm_bytes=ms(110) * CAP, n_workers=2,
        )
        cluster.place(resident, ["h0_0", "h1_0"])
        newcomer = JobSpec(
            "B-new", compute_time=ms(100),
            comm_bytes=ms(110) * CAP, n_workers=10,
        )
        hosts = CompatibilityAwarePlacement().place(cluster, newcomer, 10)
        racks = {cluster.topology.rack_of(h) for h in hosts}
        # 10 workers need two racks (cap 8); the clean pair avoids the
        # resident's rack-0/1 uplinks where possible: expects rack 2 used.
        assert "tor2" in racks

    def test_compat_aware_cluster_level_check(self):
        # The §5 global check accepts a placement that per-link checks
        # also accept, and the flag round-trips.
        cluster = _cluster(n_racks=3, hosts_per_rack=1, gpus=8)
        resident = JobSpec(
            "A-res", compute_time=ms(210),
            comm_bytes=ms(90) * CAP, n_workers=2,
        )
        cluster.place(resident, ["h0_0", "h1_0"])
        newcomer = JobSpec(
            "A-new", compute_time=ms(210),
            comm_bytes=ms(90) * CAP, n_workers=10,
        )
        policy = CompatibilityAwarePlacement(cluster_level=True)
        hosts = policy.place(cluster, newcomer, 10)
        cluster.place(newcomer, hosts)
        # Validate the §5 criterion end to end.
        from repro.core.cluster_compat import ClusterCompatibilityProblem
        from repro.core.compatibility import CompatibilityChecker

        checker = CompatibilityChecker(capacity=CAP)
        jobs = [j for j in cluster.jobs if j.uses_network]
        problem = ClusterCompatibilityProblem.from_assignments(
            [checker.circle(j.spec) for j in jobs],
            {j.job_id: [l.name for l in j.links] for j in jobs},
        )
        assert problem.solve().compatible

    def test_compat_aware_rejects_oversized(self):
        with pytest.raises(PlacementError):
            CompatibilityAwarePlacement().place(
                _cluster(n_racks=1, hosts_per_rack=1), _job("j"), 100
            )


class TestClusterSimulation:
    def test_isolated_jobs_run_at_solo_speed(self):
        cluster = _cluster(n_racks=2)
        cluster.place(_job("a", workers=2), ["h0_0", "h1_0"])
        report = ClusterSimulation(cluster, reference_capacity=CAP).run(
            FairSharing(), n_iterations=20
        )
        assert report.slowdown["a"] == pytest.approx(1.0, rel=1e-6)

    def test_single_host_job_reported_solo(self):
        cluster = _cluster()
        cluster.place(_job("a"), ["h0_0", "h0_0"])
        cluster.place(_job("b", workers=2), ["h1_0", "h2_0"])
        report = ClusterSimulation(cluster, reference_capacity=CAP).run(
            FairSharing(), n_iterations=20
        )
        assert report.slowdown["a"] == pytest.approx(1.0)

    def test_contending_jobs_slow_down_under_fair(self):
        cluster = _cluster(n_racks=2, hosts_per_rack=2)
        spec_a = JobSpec("a", ms(100), ms(110) * CAP, n_workers=2)
        spec_b = JobSpec("b", ms(100), ms(110) * CAP, n_workers=2)
        cluster.place(spec_a, ["h0_0", "h1_0"])
        cluster.place(spec_b, ["h0_1", "h1_1"])
        report = ClusterSimulation(cluster, reference_capacity=CAP).run(
            FairSharing(), n_iterations=30
        )
        assert report.mean_slowdown > 1.2

    def test_adaptive_recovers_compatible_contention(self):
        cluster = _cluster(n_racks=2, hosts_per_rack=2)
        spec_a = JobSpec("a", ms(210), ms(90) * CAP, n_workers=2)
        spec_b = JobSpec("b", ms(210), ms(90) * CAP, n_workers=2)
        cluster.place(spec_a, ["h0_0", "h1_0"])
        cluster.place(spec_b, ["h0_1", "h1_1"])
        report = ClusterSimulation(cluster, reference_capacity=CAP).run(
            AdaptiveUnfair(), n_iterations=40
        )
        assert report.mean_slowdown < 1.05
        assert report.jobs_at_solo_speed >= 1

    def test_empty_cluster_rejected(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            ClusterSimulation(_cluster()).run(FairSharing())

    def test_ring_flow_model(self):
        cluster = _cluster(n_racks=3)
        spec = JobSpec("ring", ms(100), ms(50) * CAP, n_workers=3)
        cluster.place(spec, ["h0_0", "h1_0", "h2_0"])
        report = ClusterSimulation(
            cluster, reference_capacity=CAP, flow_model="ring"
        ).run(FairSharing(), n_iterations=20)
        # Solo ring on an uncontended fabric runs at dedicated speed.
        assert report.slowdown["ring"] == pytest.approx(1.0, rel=1e-6)

    def test_unknown_flow_model_rejected(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            ClusterSimulation(_cluster(), flow_model="mesh")


class TestDynamicReplay:
    def test_arrival_schedule_shape(self):
        gen = WorkloadGenerator(seed=3)
        arrivals = arrival_schedule(gen, count=5, mean_interarrival_s=10)
        assert len(arrivals) == 5
        times = [a.time for a in arrivals]
        assert times == sorted(times)

    def test_replay_places_and_audits(self):
        cluster = _cluster(n_racks=4, hosts_per_rack=2, gpus=4)
        gen = WorkloadGenerator(seed=4)
        arrivals = arrival_schedule(
            gen, count=8, mean_interarrival_s=10, mean_lifetime_s=1e9
        )
        stats = replay(
            cluster, ConsolidatedPlacement(), arrivals,
            checker=CompatibilityChecker(capacity=CAP),
        )
        assert stats.placed + stats.rejected == 8
        assert 0 <= stats.compatibility_rate <= 1

    def test_replay_departures_free_capacity(self):
        cluster = _cluster(n_racks=1, hosts_per_rack=1, gpus=4)
        spec = _job("short", workers=4)
        arrivals = [
            JobArrival(time=0.0, spec=spec, n_workers=4, lifetime=1.0),
            JobArrival(
                time=10.0, spec=spec.with_id("later"), n_workers=4,
                lifetime=1.0,
            ),
        ]
        stats = replay(cluster, ConsolidatedPlacement(), arrivals)
        assert stats.placed == 2
        assert stats.rejected == 0
