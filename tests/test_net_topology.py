"""Topology tests: construction, lookups, builders."""

import pytest

from repro.errors import TopologyError
from repro.net.topology import Link, NodeKind, Topology
from repro.units import gbps


class TestConstruction:
    def test_add_node(self):
        topo = Topology()
        node = topo.add_node("h0")
        assert node.kind is NodeKind.HOST
        assert topo.node("h0") is node

    def test_readd_same_kind_is_noop(self):
        topo = Topology()
        a = topo.add_node("h0")
        b = topo.add_node("h0")
        assert a is b

    def test_readd_different_kind_rejected(self):
        topo = Topology()
        topo.add_node("x", NodeKind.HOST)
        with pytest.raises(TopologyError):
            topo.add_node("x", NodeKind.TOR)

    def test_add_link_creates_both_directions(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        topo.add_link("a", "b", gbps(50))
        assert topo.has_link("a", "b")
        assert topo.has_link("b", "a")

    def test_unidirectional_link(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        topo.add_link("a", "b", gbps(50), bidirectional=False)
        assert topo.has_link("a", "b")
        assert not topo.has_link("b", "a")

    def test_duplicate_link_rejected(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        topo.add_link("a", "b", gbps(1))
        with pytest.raises(TopologyError):
            topo.add_link("a", "b", gbps(1))

    def test_link_to_unknown_node_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(TopologyError):
            topo.add_link("a", "ghost", gbps(1))

    def test_zero_capacity_rejected(self):
        with pytest.raises(TopologyError):
            Link("a", "b", 0.0)

    def test_link_by_name(self):
        topo = Topology.dumbbell()
        link = topo.link_by_name("L1")
        assert (link.src, link.dst) == ("S0", "S1")

    def test_link_by_unknown_name(self):
        with pytest.raises(TopologyError):
            Topology.dumbbell().link_by_name("L99")

    def test_path_links(self):
        topo = Topology.dumbbell()
        links = topo.path_links(["ha0", "S0", "S1", "hb0"])
        assert [l.src for l in links] == ["ha0", "S0", "S1"]


class TestDumbbell:
    def test_shape(self):
        topo = Topology.dumbbell(hosts_per_side=3)
        hosts = topo.hosts()
        assert len(hosts) == 6
        assert topo.link("S0", "S1").name == "L1"

    def test_default_capacities_match_nic(self):
        topo = Topology.dumbbell(host_capacity=gbps(50))
        assert topo.link("ha0", "S0").capacity == pytest.approx(gbps(50))
        assert topo.link("S0", "S1").capacity == pytest.approx(gbps(50))

    def test_custom_bottleneck(self):
        topo = Topology.dumbbell(bottleneck_capacity=gbps(10))
        assert topo.link("S0", "S1").capacity == pytest.approx(gbps(10))

    def test_needs_hosts(self):
        with pytest.raises(TopologyError):
            Topology.dumbbell(hosts_per_side=0)


class TestSingleSwitch:
    def test_shape(self):
        topo = Topology.single_switch(4)
        assert len(topo.hosts()) == 4
        assert topo.has_link("h0", "tor0")

    def test_needs_hosts(self):
        with pytest.raises(TopologyError):
            Topology.single_switch(0)


class TestLeafSpine:
    def test_shape(self):
        topo = Topology.leaf_spine(n_racks=3, hosts_per_rack=2, n_spines=2)
        assert len(topo.hosts()) == 6
        # every ToR uplinks to every spine
        for rack in range(3):
            for spine in range(2):
                assert topo.has_link(f"tor{rack}", f"spine{spine}")

    def test_rack_of(self):
        topo = Topology.leaf_spine(n_racks=2, hosts_per_rack=2)
        assert topo.rack_of("h0_1") == "tor0"
        assert topo.rack_of("h1_0") == "tor1"

    def test_rack_of_non_host(self):
        topo = Topology.leaf_spine(n_racks=2, hosts_per_rack=2)
        assert topo.rack_of("tor0") is None

    def test_bad_dimensions(self):
        with pytest.raises(TopologyError):
            Topology.leaf_spine(n_racks=0, hosts_per_rack=2)


class TestFatTree:
    def test_shape(self):
        k = 4
        topo = Topology.fat_tree(k)
        assert len(topo.hosts()) == k**3 // 4
        cores = [n for n in topo.nodes if n.kind is NodeKind.CORE]
        tors = [n for n in topo.nodes if n.kind is NodeKind.TOR]
        spines = [n for n in topo.nodes if n.kind is NodeKind.SPINE]
        assert len(cores) == (k // 2) ** 2
        assert len(tors) == k * (k // 2)
        assert len(spines) == k * (k // 2)

    def test_named_uplinks_resolve(self):
        topo = Topology.fat_tree(4)
        up = topo.link_by_name("up_0_0_0")
        assert (up.src, up.dst) == ("edge0_0", "agg0_0")
        core = topo.link_by_name("core_1_1_2")
        assert (core.src, core.dst) == ("agg1_1", "core2")
        rev = topo.link_by_name("core_1_1_2_rev")
        assert (rev.src, rev.dst) == ("core2", "agg1_1")

    def test_rack_of_is_edge_switch(self):
        topo = Topology.fat_tree(4)
        assert topo.rack_of("h2_1_0") == "edge2_1"
        assert topo.rack_of("agg2_1") is None

    def test_tier_capacities(self):
        topo = Topology.fat_tree(
            4,
            host_capacity=gbps(50),
            uplink_capacity=gbps(40),
            core_capacity=gbps(30),
        )
        assert topo.link_by_name("h0_0_0->edge0_0").capacity == gbps(50)
        assert topo.link_by_name("up_0_0_0").capacity == gbps(40)
        assert topo.link_by_name("core_0_0_0").capacity == gbps(30)

    def test_odd_or_tiny_k_rejected(self):
        with pytest.raises(TopologyError):
            Topology.fat_tree(3)
        with pytest.raises(TopologyError):
            Topology.fat_tree(0)


class TestGraphExport:
    def test_graph_has_all_edges(self):
        topo = Topology.dumbbell(hosts_per_side=2)
        graph = topo.graph()
        assert graph.number_of_nodes() == 6
        # 4 host links + 1 bottleneck, both directions
        assert graph.number_of_edges() == 10

    def test_edge_carries_link(self):
        topo = Topology.dumbbell()
        graph = topo.graph()
        assert graph.edges["S0", "S1"]["link"].name == "L1"
