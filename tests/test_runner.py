"""Runner-layer tests: specs, registry, cache, and parallel fan-out.

The load-bearing contract is determinism: ``run_many(specs, jobs=4)``
must be byte-identical — results *and* telemetry trace — to ``jobs=1``,
and a cache hit must replay exactly what the original execution stored.
"""

import json
import math
import pickle

import pytest

from repro import io
from repro.core.timeline import IterationSample, JobTimeline
from repro.errors import ConfigError
from repro.experiments import sweep
from repro.experiments.common import phase_spec
from repro.faults import InjectionSchedule, LinkFailure, RateChange
from repro.experiments.sweep import point_specs
from repro.net.phasesim import PhaseLevelSimulator
from repro.net.topology import Topology
from repro.cc.fair import FairSharing
from repro.cc.weighted import StaticWeighted
from repro.runner import (
    ResultCache,
    RunSpec,
    RunnerConfig,
    ScenarioSpec,
    SenderSpec,
    backend_names,
    current_config,
    derive_seed,
    execute,
    get_backend,
    run_many,
    run_one,
    safe_content_hash,
    using,
)
from repro.telemetry.session import Telemetry, use
from repro.workloads.profiles import (
    EFFECTIVE_BOTTLENECK,
    figure2_vgg19_pair,
)


def small_phase_specs(n_iterations=30, seed=0):
    """The Figure 1d pair at test scale: one fair, one 2:1 weighted."""
    j1, j2 = figure2_vgg19_pair(jitter=0.02)
    job_ids = [j1.job_id, j2.job_id]
    return [
        phase_spec(
            [j1, j2],
            FairSharing(),
            n_iterations=n_iterations,
            seed=seed,
            label="runner-test-fair",
        ),
        phase_spec(
            [j1, j2],
            StaticWeighted.from_aggressiveness_order(job_ids),
            n_iterations=n_iterations,
            seed=seed,
            label="runner-test-unfair",
        ),
    ]


def canonical(results):
    """Canonical JSON of results — the byte-identity yardstick."""
    return json.dumps(
        [io.run_result_to_dict(result) for result in results],
        sort_keys=True,
    )


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a") == derive_seed(7, "a")

    def test_name_and_seed_sensitive(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_non_negative(self):
        for name in ("x", "y", "sweep:eq:0.5"):
            assert derive_seed(0, name) >= 0


class TestContentHash:
    def test_stable_across_instances(self):
        a, b = small_phase_specs()[0], small_phase_specs()[0]
        assert a.content_hash() == b.content_hash()

    def test_label_excluded(self):
        spec = small_phase_specs()[0]
        assert (
            spec.replace(label="renamed").content_hash()
            == spec.content_hash()
        )

    def test_seed_changes_hash(self):
        spec = small_phase_specs()[0]
        assert spec.replace(seed=99).content_hash() != spec.content_hash()

    def test_policy_changes_hash(self):
        fair, unfair = small_phase_specs()
        assert fair.content_hash() != unfair.content_hash()

    def test_survives_pickle(self):
        spec = small_phase_specs()[0]
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.content_hash() == spec.content_hash()

    def test_uncacheable_spec(self):
        spec = small_phase_specs()[0].replace(
            gates=(("vgg19-1", lambda t: True),)
        )
        assert not spec.cacheable()
        assert safe_content_hash(spec) == ""


class TestRegistry:
    def test_builtins_registered(self):
        names = backend_names()
        for name in ("phase", "fluid", "engine", "cluster"):
            assert name in names

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            get_backend("no-such-backend")

    def test_backend_module_resolution(self):
        # The sweep registers its point backend at import time; a spec
        # carrying backend_module resolves it even in a fresh process.
        [spec] = point_specs([0.3], 10, True, 0)
        assert spec.backend_module == "repro.experiments.sweep"
        result = execute(spec)
        assert result.data["compatible_rate"] == 1.0


class TestPhaseBackend:
    def test_matches_direct_simulator(self):
        """The backend is a refactor, not a remodel: same numbers."""
        spec = small_phase_specs()[0]
        via_runner = run_one(spec, cache=False).phase

        topology = Topology.dumbbell(
            hosts_per_side=2,
            host_capacity=EFFECTIVE_BOTTLENECK,
            bottleneck_capacity=EFFECTIVE_BOTTLENECK,
            bottleneck_name="L1",
        )
        sim = PhaseLevelSimulator(topology, FairSharing(), seed=spec.seed)
        for index, job in enumerate(spec.jobs):
            sim.add_job(
                job,
                src=f"ha{index}",
                dst=f"hb{index}",
                n_iterations=spec.n_iterations,
            )
        direct = sim.run()

        for job in spec.jobs:
            assert via_runner.iteration_times(job.job_id).tolist() == (
                direct.iteration_times(job.job_id).tolist()
            )


class TestEngineBackend:
    def test_agrees_with_phase_on_fair_dumbbell(self):
        spec = small_phase_specs()[0]
        phase = run_one(spec, cache=False).phase
        engine = run_one(
            spec.replace(backend="engine"), cache=False
        ).phase
        for job in spec.jobs:
            assert engine.mean_iteration_time(job.job_id) == (
                pytest.approx(
                    phase.mean_iteration_time(job.job_id), rel=1e-12
                )
            )


class TestTimelineSchema:
    """Every backend's RunResult carries the one canonical timeline."""

    def fluid_spec(self):
        return RunSpec(
            backend="fluid",
            seed=0,
            capacity=5e9,
            duration=0.03,
            options=(("dt", 20e-6),),
            scenarios=(
                ScenarioSpec(
                    "only",
                    (
                        SenderSpec(
                            "vgg19-1",
                            125e-6,
                            compute_time=0.002,
                            comm_bytes=5e9 * 0.001,
                        ),
                    ),
                ),
            ),
        )

    def check_schema(self, timelines):
        assert timelines
        for job_id, timeline in timelines.items():
            assert isinstance(timeline, JobTimeline)
            assert timeline.job_id == job_id
            assert len(timeline) > 0
            for position, observed in enumerate(timeline):
                assert isinstance(observed, IterationSample)
                assert observed.index == position
                assert (
                    observed.start <= observed.comm_start <= observed.end
                )
            # The codec preserves the schema bit-for-bit.
            rebuilt = io.timeline_from_dict(io.timeline_to_dict(timeline))
            assert rebuilt.to_rows() == timeline.to_rows()

    def test_phase_fluid_engine_share_schema(self):
        spec = small_phase_specs(n_iterations=5)[0]
        results = {
            "phase": run_one(spec, cache=False),
            "engine": run_one(
                spec.replace(backend="engine"), cache=False
            ),
            "fluid": run_one(self.fluid_spec(), cache=False),
        }
        for result in results.values():
            self.check_schema(result.timelines())

    def test_phase_and_engine_agree_structurally(self):
        spec = small_phase_specs(n_iterations=5)[0]
        phase = run_one(spec, cache=False).timelines()
        engine = run_one(
            spec.replace(backend="engine"), cache=False
        ).timelines()
        assert sorted(phase) == sorted(engine)
        for job_id in phase:
            assert len(phase[job_id]) == len(engine[job_id])

    def test_timelines_requires_scenario_when_ambiguous(self):
        spec = self.fluid_spec()
        two = spec.replace(
            scenarios=spec.scenarios
            + (ScenarioSpec("again", spec.scenarios[0].senders),)
        )
        result = run_one(two, cache=False)
        with pytest.raises(ConfigError, match="several scenarios"):
            result.timelines()
        self.check_schema(result.timelines(scenario="again"))


class TestRunMany:
    def test_results_in_spec_order(self):
        results = run_many(small_phase_specs(), cache=False)
        assert [r.label for r in results] == [
            "runner-test-fair", "runner-test-unfair"
        ]

    def test_parallel_matches_serial_phase(self):
        serial = run_many(small_phase_specs(), jobs=1, cache=False)
        parallel = run_many(small_phase_specs(), jobs=4, cache=False)
        assert canonical(parallel) == canonical(serial)

    def test_parallel_matches_serial_sweep(self):
        specs = point_specs((0.2, 0.45, 0.7), 30, True, 0)
        serial = run_many(specs, jobs=1, cache=False)
        parallel = run_many(specs, jobs=4, cache=False)
        assert canonical(parallel) == canonical(serial)

    def test_parallel_matches_serial_telemetry(self):
        def traced(jobs):
            session = Telemetry(name="runner-test")
            with use(session):
                run_many(small_phase_specs(), jobs=jobs, cache=False)
            return [
                (r.kind, r.t, r.fields) for r in session.trace.records
            ]

        assert traced(4) == traced(1)

    def test_unpicklable_specs_fall_back_in_process(self):
        gated = [
            spec.replace(gates=(("vgg19-1", lambda t: True),))
            for spec in small_phase_specs(n_iterations=5)
        ]
        results = run_many(gated, jobs=4, cache=False)
        assert all(r.phase is not None for r in results)


class TestCache:
    def test_hit_replays_identical_result(self, tmp_path):
        specs = small_phase_specs(n_iterations=10)
        first = run_many(specs, cache=True, cache_dir=tmp_path)
        second = run_many(specs, cache=True, cache_dir=tmp_path)
        assert canonical(second) == canonical(first)

    def test_counters_track_hits_and_misses(self, tmp_path):
        def counted():
            session = Telemetry(name="runner-test")
            run_many(
                small_phase_specs(n_iterations=10),
                cache=True,
                cache_dir=tmp_path,
                telemetry=session,
            )
            return {
                name: session.counter(f"runner.{name}").value
                for name in ("specs", "executed", "cache.hits",
                             "cache.misses")
            }

        assert counted() == {
            "specs": 2.0, "executed": 2.0,
            "cache.hits": 0.0, "cache.misses": 2.0,
        }
        assert counted() == {
            "specs": 2.0, "executed": 0.0,
            "cache.hits": 2.0, "cache.misses": 0.0,
        }

    def test_hit_replays_stored_telemetry(self, tmp_path):
        def traced():
            session = Telemetry(name="runner-test")
            run_many(
                small_phase_specs(n_iterations=10),
                cache=True,
                cache_dir=tmp_path,
                telemetry=session,
            )
            return [
                (r.kind, r.t, r.fields) for r in session.trace.records
            ]

        assert traced() == traced()

    def test_entry_round_trips_through_io(self, tmp_path):
        spec = small_phase_specs(n_iterations=10)[0]
        [executed] = run_many([spec], cache=True, cache_dir=tmp_path)
        store = ResultCache(tmp_path)
        entry = store.get(spec.content_hash())
        assert entry is not None
        assert io.run_result_to_dict(entry.result) == (
            io.run_result_to_dict(executed)
        )

    def test_corrupt_entry_heals_as_miss(self, tmp_path):
        spec = small_phase_specs(n_iterations=5)[0]
        run_many([spec], cache=True, cache_dir=tmp_path)
        store = ResultCache(tmp_path)
        path = store.path_for(spec.content_hash())
        path.write_text("{not json", encoding="utf-8")
        assert store.get(spec.content_hash()) is None
        assert not path.exists()

    def test_uncacheable_spec_never_cached(self, tmp_path):
        spec = small_phase_specs(n_iterations=5)[0].replace(
            gates=(("vgg19-1", lambda t: True),)
        )
        run_many([spec], cache=True, cache_dir=tmp_path)
        assert ResultCache(tmp_path).stats()["entries"] == 0

    def test_stats_and_clear(self, tmp_path):
        run_many(
            small_phase_specs(n_iterations=5),
            cache=True,
            cache_dir=tmp_path,
        )
        store = ResultCache(tmp_path)
        assert store.stats()["entries"] == 2
        assert store.stats()["bytes"] > 0
        assert store.clear() == 2
        assert store.stats()["entries"] == 0


class TestRunnerConfig:
    def test_default_is_serial_uncached(self):
        config = current_config()
        assert config.jobs == 1
        assert config.cache is False

    def test_using_installs_and_restores(self, tmp_path):
        config = RunnerConfig(jobs=3, cache=True, cache_dir=tmp_path)
        with using(config):
            assert current_config() is config
        assert current_config().jobs == 1

    def test_ambient_cache_dir_honoured(self, tmp_path):
        config = RunnerConfig(jobs=1, cache=True, cache_dir=tmp_path)
        with using(config):
            run_many(small_phase_specs(n_iterations=5))
        assert ResultCache(tmp_path).stats()["entries"] == 2


class TestSweepNaN:
    def test_no_compatible_pairs_is_nan(self):
        # At 70% comm fraction equal-period pairs are never compatible.
        points = sweep.run(fractions=(0.7,), pairs_per_point=20)
        assert points[0].compatible_rate == 0.0
        assert math.isnan(points[0].mean_speedup)

    def test_nan_renders_as_dash(self):
        points = sweep.run(fractions=(0.3, 0.7), pairs_per_point=20)
        report = sweep.report(points)
        assert "—" in report
        for line in report.splitlines():
            if "70%" in line:
                assert "—" in line

    def test_nan_round_trips_through_cache(self, tmp_path):
        [spec] = point_specs([0.7], 20, True, 0)
        first = run_one(spec, cache=True, cache_dir=tmp_path)
        second = run_one(spec, cache=True, cache_dir=tmp_path)
        assert math.isnan(first.data["mean_speedup"])
        assert math.isnan(second.data["mean_speedup"])


class TestFabricBackends:
    """The runner's multi-link tier: routed specs over a topology."""

    ROUTES = {
        "J1": (
            "h0_0_0->edge0_0", "up_0_0_0", "core_0_0_0",
            "core_1_0_0_rev", "up_1_0_0_rev", "edge1_0->h1_0_0",
        ),
        "J2": (
            "h0_0_1->edge0_0", "up_0_0_0", "core_0_0_0",
            "core_1_0_0_rev", "up_1_0_0_rev", "edge1_0->h1_0_1",
        ),
    }

    def _fluid_spec(self, engine, faults=None):
        senders = tuple(
            SenderSpec(
                name=name,
                timer=125e-6,
                compute_time=0.0011,
                comm_bytes=0.0013 * 50e9,
                start_offset=index * 0.0003,
                route=self.ROUTES[name],
            )
            for index, name in enumerate(sorted(self.ROUTES))
        )
        return RunSpec(
            backend="fluid",
            seed=3,
            topology=Topology.fat_tree(4),
            duration=0.02,
            scenarios=(ScenarioSpec(name="fabric", senders=senders),),
            options=(("dt", 10e-6), ("engine", engine)),
            faults=faults,
        )

    def _engine_fabric_spec(self, faults=None, n_iterations=8):
        j1, j2 = figure2_vgg19_pair(jitter=0.02)
        return RunSpec(
            backend="engine",
            seed=11,
            jobs=(j1, j2),
            policy=FairSharing(),
            topology=Topology.fat_tree(4),
            n_iterations=n_iterations,
            options=(
                ("placements", (
                    (j1.job_id, "h0_0_0", "h1_0_0"),
                    (j2.job_id, "h0_0_1", "h1_0_1"),
                )),
            ),
            faults=faults,
        )

    # -- fluid ---------------------------------------------------------

    def test_fluid_fabric_engines_agree(self):
        scalar = execute(self._fluid_spec("scalar"))
        vector = execute(self._fluid_spec("vector"))
        docs = []
        for result in (scalar, vector):
            document = io.run_result_to_dict(result)
            # The engine choice rides in options, so the spec hashes
            # (correctly) differ; the payloads must not.
            document.pop("spec_hash")
            docs.append(json.dumps(document, sort_keys=True))
        assert docs[0] == docs[1]
        trace = vector.scenario("fabric").trace
        assert "core_1_0_0_rev" in trace.link_queue_series

    def test_fluid_fabric_honours_multilink_faults(self):
        faults = InjectionSchedule(events=(
            LinkFailure("up_0_0_0", 0.005, 0.008),
        ))
        clean = execute(self._fluid_spec("vector"))
        faulted = execute(self._fluid_spec("vector", faults=faults))
        assert canonical([clean]) != canonical([faulted])

    def test_fabric_spec_round_trips_and_caches(self, tmp_path):
        spec = self._fluid_spec("vector")
        assert spec.cacheable()
        clone = io.run_spec_from_dict(io.run_spec_to_dict(spec))
        assert clone.content_hash() == spec.content_hash()
        first = run_many([spec], cache=True, cache_dir=tmp_path)
        second = run_many([spec], cache=True, cache_dir=tmp_path)
        assert canonical(second) == canonical(first)

    def test_routeless_sender_document_unchanged(self):
        plain = io.sender_spec_to_dict(SenderSpec(name="a", timer=125e-6))
        assert "route" not in plain
        routed = io.sender_spec_to_dict(
            SenderSpec(name="a", timer=125e-6, route=("L1",))
        )
        assert routed["route"] == ["L1"]
        clone = io.sender_spec_from_dict(routed)
        assert clone.route == ("L1",)

    def test_fluid_without_topology_rejects_fabric_faults(self):
        faults = InjectionSchedule(events=(
            LinkFailure("up_0_0_0", 0.001, 0.002),
        ))
        spec = RunSpec(
            backend="fluid",
            duration=0.01,
            scenarios=(ScenarioSpec(
                name="s", senders=(SenderSpec(name="a", timer=125e-6),),
            ),),
            faults=faults,
        )
        with pytest.raises(ConfigError) as excinfo:
            execute(spec)
        message = str(excinfo.value)
        assert "up_0_0_0" in message
        assert "RunSpec.topology" in message
        assert "SenderSpec.route" in message

    # -- engine --------------------------------------------------------

    def test_engine_without_topology_rejects_fabric_faults(self):
        faults = InjectionSchedule(events=(
            LinkFailure("up_0_0_0", 0.001, 0.002),
        ))
        j1, j2 = figure2_vgg19_pair()
        spec = RunSpec(
            backend="engine", jobs=(j1, j2), policy=FairSharing(),
            n_iterations=2, faults=faults,
        )
        with pytest.raises(ConfigError) as excinfo:
            execute(spec)
        message = str(excinfo.value)
        assert "up_0_0_0" in message
        assert "RunSpec.topology" in message
        assert "placements" in message

    def test_engine_fabric_needs_placements(self):
        spec = self._engine_fabric_spec().replace(options=())
        with pytest.raises(ConfigError, match="placements"):
            execute(spec)

    def test_engine_fabric_runs_and_reports_link_loads(self):
        result = execute(self._engine_fabric_spec())
        for run in result.phase.jobs.values():
            assert run.done
        loads = result.phase.link_loads
        for link in self.ROUTES["J1"]:
            assert link in loads
        assert max(
            value for _, value in loads["up_0_0_0"].breakpoints()
        ) > 0.0

    def test_engine_fabric_agrees_with_single_bottleneck_on_dumbbell(self):
        j1, j2 = figure2_vgg19_pair(jitter=0.02)
        capacity = EFFECTIVE_BOTTLENECK
        base = RunSpec(
            backend="engine", seed=5, jobs=(j1, j2),
            policy=FairSharing(), n_iterations=8, capacity=capacity,
        )
        dumbbell = Topology.dumbbell(
            hosts_per_side=2,
            host_capacity=capacity,
            bottleneck_capacity=capacity,
        )
        fabric = base.replace(
            topology=dumbbell,
            options=(
                ("placements", (
                    (j1.job_id, "ha0", "hb0"),
                    (j2.job_id, "ha1", "hb1"),
                )),
            ),
        )
        single = execute(base)
        routed = execute(fabric)
        for job_id in (j1.job_id, j2.job_id):
            assert io.timeline_to_dict(
                single.phase.timelines()[job_id]
            ) == io.timeline_to_dict(routed.phase.timelines()[job_id])

    def test_engine_fabric_fault_slows_jobs_and_restores_capacity(self):
        spec = self._engine_fabric_spec()
        topology = spec.topology
        base = topology.link_by_name("up_0_0_0").capacity
        faults = InjectionSchedule(events=(
            RateChange("up_0_0_0", 0.05, 1.0, 0.2),
        ))
        clean = execute(spec)
        faulted = execute(spec.replace(faults=faults))
        assert faulted.phase.duration > clean.phase.duration
        assert topology.link_by_name("up_0_0_0").capacity == base

    def test_engine_fabric_rejects_unknown_fault_link(self):
        from repro.errors import TopologyError

        faults = InjectionSchedule(events=(
            LinkFailure("no_such_link", 0.01, 0.02),
        ))
        with pytest.raises(TopologyError, match="no_such_link"):
            execute(self._engine_fabric_spec(faults=faults))
