"""Arc-algebra tests: normalization, set ops, rotation, tiling, coverage."""

import pytest

from repro.core.arcs import Arc, ArcSet
from repro.errors import GeometryError


class TestConstruction:
    def test_empty(self):
        s = ArcSet(100)
        assert s.is_empty
        assert s.measure == 0

    def test_simple_arc(self):
        s = ArcSet(100, [(10, 20)])
        assert s.intervals == ((10, 30),)
        assert s.measure == 20

    def test_wrapping_arc_splits(self):
        s = ArcSet(100, [(90, 20)])
        assert s.intervals == ((0, 10), (90, 100))
        assert s.measure == 20

    def test_start_reduced_mod_perimeter(self):
        assert ArcSet(100, [(110, 20)]) == ArcSet(100, [(10, 20)])

    def test_negative_start(self):
        assert ArcSet(100, [(-10, 20)]) == ArcSet(100, [(90, 20)])

    def test_full_circle(self):
        s = ArcSet(100, [(30, 100)])
        assert s.is_full
        assert s.intervals == ((0, 100),)

    def test_overfull_clamps(self):
        assert ArcSet(100, [(0, 250)]).is_full

    def test_zero_length_ignored(self):
        assert ArcSet(100, [(10, 0)]).is_empty

    def test_negative_length_rejected(self):
        with pytest.raises(GeometryError):
            ArcSet(100, [(10, -5)])

    def test_bad_perimeter_rejected(self):
        with pytest.raises(GeometryError):
            ArcSet(0)

    def test_overlapping_inputs_merge(self):
        s = ArcSet(100, [(10, 20), (20, 20)])
        assert s.intervals == ((10, 40),)

    def test_adjacent_inputs_merge(self):
        s = ArcSet(100, [(10, 10), (20, 10)])
        assert s.intervals == ((10, 30),)

    def test_arc_dataclass_validation(self):
        with pytest.raises(GeometryError):
            Arc(0, 0)


class TestQueries:
    def test_contains(self):
        s = ArcSet(100, [(10, 20)])
        assert s.contains(10)
        assert s.contains(29)
        assert not s.contains(30)
        assert not s.contains(9)

    def test_contains_wraps(self):
        s = ArcSet(100, [(90, 20)])
        assert s.contains(95)
        assert s.contains(5)
        assert s.contains(105)  # mod perimeter
        assert not s.contains(50)

    def test_equality_and_hash(self):
        a = ArcSet(100, [(10, 20)])
        b = ArcSet(100, [(110, 20)])
        assert a == b
        assert hash(a) == hash(b)

    def test_different_perimeters_not_equal(self):
        assert ArcSet(100, [(0, 10)]) != ArcSet(200, [(0, 10)])


class TestSetAlgebra:
    def test_union(self):
        a = ArcSet(100, [(0, 10)])
        b = ArcSet(100, [(50, 10)])
        u = a.union(b)
        assert u.measure == 20
        assert u.contains(5) and u.contains(55)

    def test_union_merges_overlap(self):
        a = ArcSet(100, [(0, 30)])
        b = ArcSet(100, [(20, 30)])
        assert a.union(b).intervals == ((0, 50),)

    def test_intersection(self):
        a = ArcSet(100, [(0, 30)])
        b = ArcSet(100, [(20, 30)])
        assert a.intersection(b).intervals == ((20, 30),)

    def test_disjoint_intersection_empty(self):
        a = ArcSet(100, [(0, 10)])
        b = ArcSet(100, [(50, 10)])
        assert a.intersection(b).is_empty
        assert not a.intersects(b)

    def test_intersects_early_exit(self):
        a = ArcSet(100, [(0, 60)])
        b = ArcSet(100, [(50, 10)])
        assert a.intersects(b)

    def test_complement(self):
        s = ArcSet(100, [(10, 20)])
        c = s.complement()
        assert c.measure == 80
        assert c.intervals == ((0, 10), (30, 100))

    def test_complement_of_empty_is_full(self):
        assert ArcSet(100).complement().is_full

    def test_complement_involution(self):
        s = ArcSet(100, [(10, 20), (50, 5)])
        assert s.complement().complement() == s

    def test_overlap_length(self):
        a = ArcSet(100, [(0, 50)])
        b = ArcSet(100, [(40, 30)])
        assert a.overlap_length(b) == 10

    def test_mismatched_perimeters_rejected(self):
        with pytest.raises(GeometryError):
            ArcSet(100).union(ArcSet(200))


class TestRotation:
    def test_rotate_moves_arc(self):
        s = ArcSet(100, [(10, 20)]).rotate(5)
        assert s.intervals == ((15, 35),)

    def test_rotate_wraps(self):
        s = ArcSet(100, [(80, 15)]).rotate(10)
        assert s == ArcSet(100, [(90, 15)])

    def test_rotate_preserves_measure(self):
        s = ArcSet(100, [(10, 20), (60, 5)])
        for delta in (1, 37, 99, -13):
            assert s.rotate(delta).measure == s.measure

    def test_rotate_by_perimeter_is_identity(self):
        s = ArcSet(100, [(10, 20)])
        assert s.rotate(100) == s
        assert s.rotate(0) is s

    def test_rotate_negative(self):
        s = ArcSet(100, [(10, 20)]).rotate(-10)
        assert s == ArcSet(100, [(0, 20)])

    def test_rotation_composes(self):
        s = ArcSet(100, [(10, 20)])
        assert s.rotate(30).rotate(40) == s.rotate(70)


class TestTiling:
    def test_tile_doubles(self):
        s = ArcSet(50, [(10, 5)]).tile(100)
        assert s.intervals == ((10, 15), (60, 65))

    def test_tile_preserves_density(self):
        s = ArcSet(40, [(30, 10)])
        tiled = s.tile(120)
        assert tiled.measure == 3 * s.measure

    def test_tile_same_perimeter_identity(self):
        s = ArcSet(40, [(5, 10)])
        assert s.tile(40) == s

    def test_tile_non_multiple_rejected(self):
        with pytest.raises(GeometryError):
            ArcSet(40, [(0, 10)]).tile(100)

    def test_tiled_wrapping_arc(self):
        s = ArcSet(40, [(35, 10)]).tile(80)
        # arcs [35,45) and [75,85)=[75,80)+[0,5) on the 80-circle
        assert s.measure == 20
        assert s.contains(36) and s.contains(44)
        assert s.contains(76) and s.contains(3)


class TestGaps:
    def test_simple_gaps(self):
        # Complement pieces [0,10), [30,50), [60,100); the first and last
        # join across zero into one circular gap of length 50.
        s = ArcSet(100, [(10, 20), (50, 10)])
        assert sorted(s.gaps()) == [(30, 20), (60, 50)]

    def test_gap_lengths_sum_to_uncovered(self):
        s = ArcSet(100, [(10, 20), (50, 10)])
        assert sum(length for _, length in s.gaps()) == 100 - s.measure

    def test_gap_joins_across_zero(self):
        s = ArcSet(100, [(40, 20)])
        gaps = s.gaps()
        assert len(gaps) == 1
        start, length = gaps[0]
        assert start == 60 and length == 80

    def test_full_set_has_no_gaps(self):
        assert ArcSet(100, [(0, 100)]).gaps() == []

    def test_empty_set_gap_is_whole_circle(self):
        assert ArcSet(100).gaps() == [(0, 100)]


class TestCoverage:
    def test_counts(self):
        a = ArcSet(100, [(0, 50)])
        b = ArcSet(100, [(25, 50)])
        segments = ArcSet.coverage([a, b])
        counts = {(s, e): c for s, e, c in segments}
        assert counts[(0, 25)] == 1
        assert counts[(25, 50)] == 2
        assert counts[(50, 75)] == 1
        assert counts[(75, 100)] == 0

    def test_segments_partition_circle(self):
        a = ArcSet(100, [(10, 30)])
        b = ArcSet(100, [(90, 25)])
        segments = ArcSet.coverage([a, b])
        assert segments[0][0] == 0
        assert segments[-1][1] == 100
        for (s1, e1, _), (s2, e2, _) in zip(segments, segments[1:]):
            assert e1 == s2

    def test_max_coverage(self):
        a = ArcSet(100, [(0, 50)])
        b = ArcSet(100, [(25, 50)])
        c = ArcSet(100, [(40, 20)])
        assert ArcSet.max_coverage([a, b, c]) == 3

    def test_empty_collection_rejected(self):
        with pytest.raises(GeometryError):
            ArcSet.coverage([])

    def test_mixed_perimeters_rejected(self):
        with pytest.raises(GeometryError):
            ArcSet.coverage([ArcSet(100), ArcSet(50)])
