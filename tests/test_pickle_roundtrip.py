"""Pickling round-trips for everything a run spec can carry.

``run_many`` fans specs out over a process pool, so job specs,
topologies, gates, and share policies must all survive pickling with
behaviour intact — not merely without error.
"""

import pickle

import numpy as np
import pytest

from repro.cc.adaptive import AdaptiveUnfair
from repro.cc.fair import FairSharing
from repro.cc.priority import PrioritySharing
from repro.cc.weighted import StaticWeighted
from repro.core.rotation import CommWindow
from repro.errors import ConfigError
from repro.mechanisms.flow_scheduling import PeriodicGate
from repro.net.topology import Topology
from repro.units import gbps
from repro.workloads.job import JobSpec
from repro.workloads.profiles import figure2_vgg19_pair


def roundtrip(value):
    return pickle.loads(pickle.dumps(value))


class TestJobSpec:
    def test_round_trips(self):
        spec, _ = figure2_vgg19_pair()
        clone = roundtrip(spec)
        assert clone == spec or clone.job_id == spec.job_id
        assert clone.compute_time == spec.compute_time
        assert clone.comm_bytes == spec.comm_bytes
        assert clone.n_workers == spec.n_workers


class TestTopology:
    def assert_same_shape(self, clone, original):
        assert [n.name for n in clone.nodes] == [
            n.name for n in original.nodes
        ]
        assert [
            (l.src, l.dst, l.capacity, l.name) for l in clone.links
        ] == [
            (l.src, l.dst, l.capacity, l.name) for l in original.links
        ]

    def test_dumbbell(self):
        original = Topology.dumbbell(
            hosts_per_side=3,
            host_capacity=gbps(42),
            bottleneck_capacity=gbps(42),
            bottleneck_name="L1",
        )
        self.assert_same_shape(roundtrip(original), original)

    def test_leaf_spine(self):
        original = Topology.leaf_spine(
            n_racks=4,
            hosts_per_rack=2,
            n_spines=1,
            host_capacity=gbps(42),
            uplink_capacity=gbps(42),
        )
        clone = roundtrip(original)
        self.assert_same_shape(clone, original)
        assert clone.rack_of("h2_1") == original.rack_of("h2_1")


def make_gate(slack=0.6, epoch=0.007):
    windows = [CommWindow("j1", start=10, length=40, period=100)]
    return PeriodicGate(
        windows, ticks_per_second=1000.0, slack=slack, epoch=epoch
    )


class TestPeriodicGate:
    def test_state_round_trip_via_factory(self):
        gate = make_gate()
        clone = PeriodicGate.from_state(gate.to_state())
        assert clone.period == gate.period
        assert clone.epoch == gate.epoch
        assert clone._openings == gate._openings

    def test_pickle_preserves_behaviour(self):
        gate = make_gate()
        clone = roundtrip(gate)
        for now in np.linspace(0.0, 0.35, 141):
            assert clone("j1", float(now)) == gate("j1", float(now))

    def test_reduce_uses_factory(self):
        factory, args = make_gate().__reduce__()
        assert factory == PeriodicGate.from_state
        assert args[0]["period"] > 0

    def test_invalid_state_rejected(self):
        with pytest.raises(ConfigError):
            PeriodicGate.from_state(
                {"period": 0.0, "epoch": 0.0, "openings": []}
            )


class TestPolicies:
    def test_fair(self):
        assert roundtrip(FairSharing()).name == "fair"

    def test_static_weighted(self):
        policy = StaticWeighted({"a": 4.0, "b": 2.0}, default=1.0)
        clone = roundtrip(policy)
        assert clone.weights == policy.weights
        assert clone.default_weight == policy.default_weight
        assert clone.weight_for_job("a") == 4.0
        assert clone.weight_for_job("missing") == 1.0

    def test_priority(self):
        policy = PrioritySharing({"a": 2, "b": 1}, default=0)
        clone = roundtrip(policy)
        assert clone.priorities == policy.priorities
        assert clone.default_priority == policy.default_priority

    def test_adaptive_unfair(self):
        policy = AdaptiveUnfair(
            gain=2.0,
            exponent=1.5,
            base_weight=0.5,
            reallocation_interval=1e-3,
        )
        clone = roundtrip(policy)
        assert clone.gain == policy.gain
        assert clone.exponent == policy.exponent
        assert clone.base_weight == policy.base_weight
        assert clone.reallocation_interval == (
            policy.reallocation_interval
        )


class TestRunSpec:
    def test_full_spec_round_trips(self):
        from repro.experiments.common import phase_spec

        j1, j2 = figure2_vgg19_pair()
        spec = phase_spec(
            [j1, j2],
            StaticWeighted({j1.job_id: 2.0}),
            n_iterations=12,
            seed=3,
            start_offsets={j1.job_id: 0.004},
            gates={j1.job_id: make_gate()},
            label="pickle-test",
        )
        clone = roundtrip(spec)
        assert clone.label == spec.label
        assert clone.seed == spec.seed
        assert clone.start_offsets == spec.start_offsets
        assert clone.gates_dict()[j1.job_id].period == (
            spec.gates_dict()[j1.job_id].period
        )
