"""Phase-level simulator tests: solo runs, sharing, sliding, gates."""

import numpy as np
import pytest

from repro.cc.adaptive import AdaptiveUnfair
from repro.cc.fair import FairSharing
from repro.cc.priority import PrioritySharing
from repro.cc.weighted import StaticWeighted
from repro.errors import ConfigError, SimulationError, WorkloadError
from repro.net.phasesim import PhaseLevelSimulator
from repro.net.topology import Topology
from repro.units import gbps, ms
from repro.workloads.job import JobSpec

CAP = gbps(42)


def _job(name, compute_ms=100, comm_ms=100, jitter=0.0):
    return JobSpec(
        job_id=name,
        compute_time=ms(compute_ms),
        comm_bytes=ms(comm_ms) * CAP,
        compute_jitter=jitter,
    )


def _dumbbell(n=2):
    return Topology.dumbbell(
        hosts_per_side=n, host_capacity=CAP, bottleneck_capacity=CAP
    )


def _run(specs, policy, n_iterations=10, offsets=None, gates=None, seed=0):
    sim = PhaseLevelSimulator(_dumbbell(len(specs)), policy, seed=seed)
    offsets = offsets or {}
    gates = gates or {}
    for i, spec in enumerate(specs):
        sim.add_job(
            spec, f"ha{i}", f"hb{i}", n_iterations=n_iterations,
            start_offset=offsets.get(spec.job_id, 0.0),
            gate=gates.get(spec.job_id),
        )
    return sim.run()


class TestSoloJob:
    def test_iteration_time_is_exact(self):
        result = _run([_job("J", 100, 50)], FairSharing(), n_iterations=5)
        np.testing.assert_allclose(
            result.iteration_times("J"), ms(150), rtol=1e-9
        )

    def test_iteration_count(self):
        result = _run([_job("J")], FairSharing(), n_iterations=7)
        assert len(result.iteration_times("J")) == 7

    def test_records_have_monotone_times(self):
        result = _run([_job("J")], FairSharing(), n_iterations=5)
        records = result.jobs["J"].records
        for first, second in zip(records, records[1:]):
            assert second.start == pytest.approx(first.end)
            assert first.comm_start > first.start

    def test_start_offset_shifts_everything(self):
        result = _run(
            [_job("J")], FairSharing(), n_iterations=2,
            offsets={"J": 0.5},
        )
        assert result.jobs["J"].records[0].start == pytest.approx(0.5)

    def test_comm_duration_matches_solo_time(self):
        result = _run([_job("J", 100, 70)], FairSharing(), n_iterations=3)
        record = result.jobs["J"].records[0]
        assert record.comm_duration == pytest.approx(ms(70))


class TestFairSharing:
    def test_synchronized_identical_jobs_stay_overlapped(self):
        # Fair sharing pins both jobs at C + 2*Tc forever (Figure 2a).
        specs = [_job("J1", 100, 110), _job("J2", 100, 110)]
        result = _run(specs, FairSharing(), n_iterations=10)
        for job in ("J1", "J2"):
            np.testing.assert_allclose(
                result.iteration_times(job), ms(320), rtol=1e-9
            )

    def test_non_overlapping_jobs_unaffected(self):
        # J2 starts while J1 computes; small comm phases never collide.
        specs = [_job("J1", 200, 20), _job("J2", 200, 20)]
        result = _run(
            specs, FairSharing(), n_iterations=5,
            offsets={"J2": ms(100)},
        )
        for job in ("J1", "J2"):
            np.testing.assert_allclose(
                result.iteration_times(job), ms(220), rtol=1e-9
            )

    def test_bytes_conservation(self):
        # Integrated rate over each comm phase equals comm_bytes.
        spec = _job("J1", 100, 110)
        result = _run([spec, _job("J2", 100, 110)], FairSharing(), 5)
        trace = result.jobs["J1"].rate_trace
        for record in result.jobs["J1"].records:
            moved = trace.integrate(record.comm_start, record.end)
            assert moved == pytest.approx(spec.comm_bytes, rel=1e-6)

    def test_link_load_never_exceeds_capacity(self):
        result = _run(
            [_job("J1", 50, 150), _job("J2", 50, 150)], FairSharing(), 5
        )
        for _, load in result.link_loads["L1"].breakpoints():
            assert load <= CAP * (1 + 1e-9)


class TestUnfairSliding:
    def test_unfairness_speeds_up_both_jobs(self):
        specs = [_job("J1", 100, 110), _job("J2", 100, 110)]
        fair = _run(specs, FairSharing(), n_iterations=30)
        unfair = _run(
            specs,
            StaticWeighted.from_aggressiveness_order(["J1", "J2"]),
            n_iterations=30,
        )
        for job in ("J1", "J2"):
            assert unfair.mean_iteration_time(job, skip=10) < (
                fair.mean_iteration_time(job, skip=10)
            )

    def test_sliding_separates_comm_phases(self):
        # The overlap between comm phases shrinks dramatically from the
        # first iteration (full collision) to steady state (Figure 2b);
        # this workload keeps a small residual because its total comm
        # demand slightly exceeds the solo period.
        specs = [_job("J1", 100, 110), _job("J2", 100, 110)]
        result = _run(
            specs,
            StaticWeighted.from_aggressiveness_order(["J1", "J2"]),
            n_iterations=30,
        )

        def overlap_with_j2(record):
            return sum(
                max(0.0, min(record.end, o.end)
                    - max(record.comm_start, o.comm_start))
                for o in result.jobs["J2"].records
            )

        first = overlap_with_j2(result.jobs["J1"].records[0])
        last = overlap_with_j2(result.jobs["J1"].records[-1])
        assert first > ms(100)  # starts fully collided
        assert last < 0.4 * first

    def test_compatible_jobs_reach_solo_speed(self):
        # 30% comm fraction: two jobs interleave perfectly.
        specs = [_job("J1", 210, 90), _job("J2", 210, 90)]
        unfair = _run(
            specs,
            StaticWeighted.from_aggressiveness_order(["J1", "J2"]),
            n_iterations=40,
        )
        for job in ("J1", "J2"):
            assert unfair.mean_iteration_time(job, skip=20) == pytest.approx(
                ms(300), rel=0.01
            )


class TestPriorityPolicy:
    def test_starved_job_finishes_after_high_priority(self):
        specs = [_job("J1", 100, 100), _job("J2", 100, 100)]
        result = _run(
            specs,
            PrioritySharing.unique_for(["J1", "J2"]),
            n_iterations=3,
        )
        # In the first iteration J1 owns the link; J2's comm waits.
        j1_first = result.jobs["J1"].records[0]
        j2_first = result.jobs["J2"].records[0]
        assert j1_first.end == pytest.approx(ms(200))
        assert j2_first.end == pytest.approx(ms(300))


class TestAdaptivePolicy:
    def test_desynchronized_jobs_converge_to_interleaving(self):
        specs = [_job("J1", 150, 70), _job("J2", 150, 70)]
        result = _run(
            specs, AdaptiveUnfair(), n_iterations=40,
            offsets={"J2": ms(5)},
        )
        for job in ("J1", "J2"):
            assert result.mean_iteration_time(job, skip=25) == pytest.approx(
                ms(220), rel=0.02
            )

    def test_progress_tick_updates_rates(self):
        specs = [_job("J1", 100, 100), _job("J2", 100, 100)]
        result = _run(
            specs, AdaptiveUnfair(reallocation_interval=ms(5)),
            n_iterations=3, offsets={"J2": ms(10)},
        )
        # The rate trace must show more than one level per comm phase.
        trace = result.jobs["J1"].rate_trace
        assert len(trace.breakpoints()) > 6


class TestGates:
    def test_gate_delays_comm_start(self):
        delay_until = 0.5

        def gate(job_id, now):
            return max(now, delay_until)

        result = _run(
            [_job("J", 100, 50)], FairSharing(), n_iterations=1,
            gates={"J": gate},
        )
        record = result.jobs["J"].records[0]
        assert record.comm_start == pytest.approx(0.5)
        assert record.duration == pytest.approx(0.55)

    def test_gate_returning_now_is_transparent(self):
        result = _run(
            [_job("J", 100, 50)], FairSharing(), n_iterations=2,
            gates={"J": lambda job, now: now},
        )
        np.testing.assert_allclose(
            result.iteration_times("J"), ms(150), rtol=1e-9
        )

    def test_gate_in_past_rejected(self):
        with pytest.raises(SimulationError):
            _run(
                [_job("J")], FairSharing(), n_iterations=1,
                gates={"J": lambda job, now: now - 1.0},
            )


class TestJitter:
    def test_jitter_spreads_iteration_times(self):
        result = _run(
            [_job("J", 100, 50, jitter=0.05)], FairSharing(),
            n_iterations=50,
        )
        times = result.iteration_times("J")
        assert times.std() > 0
        assert times.mean() == pytest.approx(ms(150), rel=0.05)

    def test_jitter_is_seeded(self):
        a = _run([_job("J", jitter=0.05)], FairSharing(), 10, seed=3)
        b = _run([_job("J", jitter=0.05)], FairSharing(), 10, seed=3)
        np.testing.assert_allclose(
            a.iteration_times("J"), b.iteration_times("J")
        )


class TestValidation:
    def test_duplicate_job_id_rejected(self):
        sim = PhaseLevelSimulator(_dumbbell(), FairSharing())
        sim.add_job(_job("J"), "ha0", "hb0", n_iterations=1)
        with pytest.raises(ConfigError):
            sim.add_job(_job("J"), "ha1", "hb1", n_iterations=1)

    def test_zero_iterations_rejected(self):
        sim = PhaseLevelSimulator(_dumbbell(), FairSharing())
        with pytest.raises(WorkloadError):
            sim.add_job(_job("J"), "ha0", "hb0", n_iterations=0)

    def test_run_without_jobs_rejected(self):
        with pytest.raises(SimulationError):
            PhaseLevelSimulator(_dumbbell(), FairSharing()).run()

    def test_negative_offset_rejected(self):
        sim = PhaseLevelSimulator(_dumbbell(), FairSharing())
        with pytest.raises(ConfigError):
            sim.add_job(
                _job("J"), "ha0", "hb0", n_iterations=1, start_offset=-1.0
            )

    def test_mean_without_samples_rejected(self):
        result = _run([_job("J")], FairSharing(), n_iterations=2)
        with pytest.raises(SimulationError):
            result.mean_iteration_time("J", skip=10)
