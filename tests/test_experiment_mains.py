"""Smoke tests: every experiment's ``main()`` prints a report.

The heavyweight drivers are exercised with full assertions in
``test_experiments.py`` and the benchmarks; these tests pin the
presentation layer (the printed paper-vs-measured reports) for the cheap
artifacts plus the CLI glue around them.
"""

import pytest

from repro.experiments import (
    extensions,
    figure2,
    figure3,
    figure4,
    figure5,
    sweep,
)


class TestMains:
    def test_figure3_main(self, capsys):
        figure3.main()
        out = capsys.readouterr().out
        assert "255 ms" in out and "[0, 141) ms" in out

    def test_figure4_main(self, capsys):
        figure4.main()
        out = capsys.readouterr().out
        assert "overlap after rotation" in out

    def test_figure5_main(self, capsys):
        figure5.main()
        out = capsys.readouterr().out
        assert "LCM" in out
        assert "30 deg" in out
        # The ASCII circle art and coverage bands render too.
        assert "unified perimeter = 120 ticks" in out
        assert "coverage before rotation" in out

    def test_extensions_main(self, capsys):
        extensions.main()
        out = capsys.readouterr().out
        assert "cluster-level" in out
        assert "fractional demands" in out
        assert "hyper-parameter tuning" in out

    def test_sweep_main(self, capsys):
        sweep.main()
        out = capsys.readouterr().out
        assert "comm fraction" in out
        assert "mixed-period" in out


class TestFigure2Convergence:
    def test_slide_reaches_bounded_limit_cycle(self):
        # This workload's comm demand exceeds its solo period, so the
        # slide ends in a bounded oscillation: no fixed point at a tight
        # tolerance, but a stable band well below the fair 320 ms.
        result = figure2.run(n_iterations=16)
        tight = result.slide_convergence(tolerance=0.01)
        loose = result.slide_convergence(tolerance=0.16)
        assert not tight.converged
        assert loose.converged
        assert loose.steady_value < 0.27  # vs 0.32 under fair sharing

    def test_report_includes_utilization_rows(self):
        result = figure2.run(n_iterations=6)
        out = result.report()
        assert "unfair/J1" in out and "fair/J2" in out
