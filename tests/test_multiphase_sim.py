"""Multi-phase jobs in the phase-level simulator, and the on-off DCQCN
cross-fidelity source."""

import numpy as np
import pytest

from repro.cc.dcqcn import DcqcnFluidSimulator, DcqcnParams, OnOffDcqcnJob
from repro.cc.fair import FairSharing
from repro.cc.weighted import StaticWeighted
from repro.errors import ConfigError
from repro.net.phasesim import PhaseLevelSimulator
from repro.net.topology import Topology
from repro.units import gbps, ms
from repro.workloads.job import JobSpec

CAP = gbps(42)


def _dumbbell(n=2):
    return Topology.dumbbell(
        hosts_per_side=n, host_capacity=CAP, bottleneck_capacity=CAP
    )


class TestMultiPhaseSimulation:
    def test_solo_multi_phase_iteration_time(self):
        spec = JobSpec.multi_phase(
            "mp",
            [(ms(50), ms(20) * CAP), (ms(30), ms(15) * CAP),
             (ms(40), ms(10) * CAP)],
        )
        sim = PhaseLevelSimulator(_dumbbell(1), FairSharing())
        sim.add_job(spec, "ha0", "hb0", n_iterations=4)
        result = sim.run()
        np.testing.assert_allclose(
            result.iteration_times("mp"), ms(165), rtol=1e-9
        )

    def test_bytes_conserved_across_segments(self):
        spec = JobSpec.multi_phase(
            "mp", [(ms(50), ms(20) * CAP), (ms(30), ms(15) * CAP)]
        )
        sim = PhaseLevelSimulator(_dumbbell(1), FairSharing())
        sim.add_job(spec, "ha0", "hb0", n_iterations=3)
        result = sim.run()
        run = result.jobs["mp"]
        for record in run.records:
            moved = run.rate_trace.integrate(record.start, record.end)
            assert moved == pytest.approx(spec.comm_bytes, rel=1e-6)

    def test_comm_start_is_first_burst(self):
        spec = JobSpec.multi_phase(
            "mp", [(ms(50), ms(20) * CAP), (ms(30), ms(15) * CAP)]
        )
        sim = PhaseLevelSimulator(_dumbbell(1), FairSharing())
        sim.add_job(spec, "ha0", "hb0", n_iterations=1)
        result = sim.run()
        record = result.jobs["mp"].records[0]
        assert record.comm_start == pytest.approx(ms(50))

    def test_multi_phase_pair_shares_fairly(self):
        mk = lambda name: JobSpec.multi_phase(
            name, [(ms(60), ms(40) * CAP), (ms(60), ms(40) * CAP)]
        )
        sim = PhaseLevelSimulator(_dumbbell(2), FairSharing())
        sim.add_job(mk("a"), "ha0", "hb0", n_iterations=10)
        sim.add_job(mk("b"), "ha1", "hb1", n_iterations=10)
        result = sim.run()
        # Synchronized identical bursts at half rate: 60 + 80 per segment.
        np.testing.assert_allclose(
            result.iteration_times("a"), ms(280), rtol=1e-9
        )

    def test_multi_phase_pair_interleaves_under_unfairness(self):
        mk = lambda name: JobSpec.multi_phase(
            name, [(ms(60), ms(40) * CAP), (ms(60), ms(40) * CAP)]
        )
        fair = PhaseLevelSimulator(_dumbbell(2), FairSharing())
        unfair = PhaseLevelSimulator(
            _dumbbell(2), StaticWeighted.from_aggressiveness_order(["a", "b"])
        )
        for sim in (fair, unfair):
            sim.add_job(mk("a"), "ha0", "hb0", n_iterations=25)
            sim.add_job(mk("b"), "ha1", "hb1", n_iterations=25)
        fair_result = fair.run()
        unfair_result = unfair.run()
        for job in ("a", "b"):
            assert unfair_result.mean_iteration_time(job, skip=10) < (
                fair_result.mean_iteration_time(job, skip=10)
            )

    def test_jitter_applies_to_all_segments(self):
        spec = JobSpec.multi_phase(
            "mp", [(ms(50), ms(20) * CAP), (ms(50), ms(20) * CAP)],
            compute_jitter=0.05,
        )
        sim = PhaseLevelSimulator(_dumbbell(1), FairSharing(), seed=4)
        sim.add_job(spec, "ha0", "hb0", n_iterations=30)
        result = sim.run()
        assert result.iteration_times("mp").std() > 0


class TestOnOffDcqcnJob:
    def _run_pair(self, timer1, timer2, duration=1.2):
        sim = DcqcnFluidSimulator(capacity=gbps(50), dt=10e-6)
        params = DcqcnParams(line_rate=gbps(50))
        jobs = {}
        for index, (name, timer) in enumerate(
            (("J1", timer1), ("J2", timer2))
        ):
            job = OnOffDcqcnJob(
                name, params.with_timer(timer),
                np.random.default_rng(10 + index),
                compute_time=0.1,
                comm_bytes=0.11 * gbps(42),
                start_offset=index * 0.004,
            )
            jobs[name] = job
            sim.add_source(job)
        sim.run(duration)
        return jobs

    def test_iterations_complete(self):
        jobs = self._run_pair(125e-6, 125e-6)
        for job in jobs.values():
            assert len(job.timeline) >= 3

    def test_iteration_time_bounded_below_by_solo(self):
        jobs = self._run_pair(125e-6, 125e-6)
        # Solo time at the 50 Gbps line rate is compute + bytes/line.
        solo = 0.1 + (0.11 * gbps(42)) / gbps(50)
        for job in jobs.values():
            assert (job.iteration_times() >= solo * 0.999).all()

    def test_rate_zero_while_computing(self):
        params = DcqcnParams()
        job = OnOffDcqcnJob(
            "j", params, np.random.default_rng(0),
            compute_time=1.0, comm_bytes=1e6,
        )
        job.step(0.0, 1e-5, 0.0)
        assert job.rate == 0.0

    def test_comm_starts_after_compute(self):
        jobs = self._run_pair(125e-6, 125e-6, duration=0.5)
        job = jobs["J1"]
        assert job.timeline.samples[0].comm_start == pytest.approx(0.1, abs=1e-3)

    def test_bad_args_rejected(self):
        with pytest.raises(ConfigError):
            OnOffDcqcnJob(
                "j", DcqcnParams(), np.random.default_rng(0),
                compute_time=-1.0, comm_bytes=1e6,
            )
        with pytest.raises(ConfigError):
            OnOffDcqcnJob(
                "j", DcqcnParams(), np.random.default_rng(0),
                compute_time=0.1, comm_bytes=0.0,
            )

    def test_timer_skew_speeds_both_jobs(self):
        fair = self._run_pair(125e-6, 125e-6, duration=2.0)
        unfair = self._run_pair(100e-6, 125e-6, duration=2.0)
        for name in ("J1", "J2"):
            fair_mean = fair[name].iteration_times()[2:].mean()
            unfair_mean = unfair[name].iteration_times()[2:].mean()
            assert unfair_mean < fair_mean * 1.02, name
