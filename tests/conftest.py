"""Shared fixtures for the test suite."""

import pytest

from repro.cc.fair import FairSharing
from repro.cc.weighted import StaticWeighted
from repro.core.circle import JobCircle
from repro.net.topology import Topology
from repro.units import gbps, ms
from repro.workloads.job import JobSpec

#: A small capacity that keeps byte counts readable in tests.
CAPACITY = gbps(42)


@pytest.fixture(autouse=True)
def _isolated_runs_dir(tmp_path, monkeypatch):
    """Keep CLI-recorded runs out of the working tree during tests."""
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))


@pytest.fixture
def capacity():
    """Reference link capacity used across tests."""
    return CAPACITY


@pytest.fixture
def dumbbell():
    """A two-host-per-side dumbbell with bottleneck L1."""
    return Topology.dumbbell(
        hosts_per_side=2,
        host_capacity=CAPACITY,
        bottleneck_capacity=CAPACITY,
    )


@pytest.fixture
def simple_pair():
    """Two identical jobs: 100 ms compute + 100 ms solo communication."""
    mk = lambda name: JobSpec(
        job_id=name,
        compute_time=ms(100),
        comm_bytes=ms(100) * CAPACITY,
    )
    return mk("J1"), mk("J2")


@pytest.fixture
def compatible_pair_circles():
    """Two equal-period circles that can interleave (40 + 45 < 100)."""
    return [
        JobCircle.from_phases("J1", 60, 40),
        JobCircle.from_phases("J2", 55, 45),
    ]


@pytest.fixture
def incompatible_pair_circles():
    """Two equal-period circles that cannot (60 + 60 > 100)."""
    return [
        JobCircle.from_phases("J1", 40, 60),
        JobCircle.from_phases("J2", 40, 60),
    ]


@pytest.fixture
def fair_policy():
    """Plain max-min fair sharing."""
    return FairSharing()


@pytest.fixture
def unfair_policy():
    """2:1 static unfairness, J1 more aggressive."""
    return StaticWeighted.from_aggressiveness_order(["J1", "J2"])
