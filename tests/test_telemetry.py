"""Unit tests for the telemetry subsystem.

Covers the instruments (counters, gauges, histograms), span nesting,
JSONL round-trips, the disabled (NULL) path, the ambient session, and
the run recorder + CLI stats/trace commands.
"""

import json

import pytest

from repro import io
from repro.cc.fair import FairSharing
from repro.cli import main as cli_main
from repro.errors import ConfigError
from repro.experiments import ablations
from repro.experiments.common import run_jobs
from repro.sim.engine import Simulator
from repro.telemetry import (
    NULL,
    Registry,
    Telemetry,
    TraceRecord,
    TraceRecorder,
    current,
    use,
)
from repro.telemetry.runs import (
    RunRecorder,
    flow_bytes,
    resolve_run,
    stats_report,
    trace_report,
)


class TestCounters:
    def test_counter_accumulates(self):
        registry = Registry()
        counter = registry.counter("a.b")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_is_shared_by_name(self):
        registry = Registry()
        registry.counter("x").inc()
        registry.counter("x").inc()
        assert registry.counter("x").value == 2

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigError):
            Registry().counter("x").inc(-1)

    def test_kind_collision_rejected(self):
        registry = Registry()
        registry.counter("x")
        with pytest.raises(ConfigError):
            registry.gauge("x")


class TestGauges:
    def test_gauge_moves_both_ways(self):
        gauge = Registry().gauge("depth")
        gauge.set(5)
        gauge.inc()
        gauge.dec(3)
        assert gauge.value == 3


class TestHistograms:
    def test_summary_statistics(self):
        histogram = Registry().histogram("h")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == 10.0
        assert histogram.mean == 2.5
        assert histogram.min == 1.0
        assert histogram.max == 4.0
        assert histogram.percentile(50) == 2.5
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 4.0

    def test_empty_histogram_is_zero(self):
        histogram = Registry().histogram("h")
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(50) == 0.0

    def test_bad_percentile_rejected(self):
        with pytest.raises(ConfigError):
            Registry().histogram("h").percentile(101)

    def test_snapshot_is_sorted(self):
        registry = Registry()
        registry.counter("z").inc()
        registry.counter("a").inc()
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "z"]


class TestSpans:
    def test_span_records_duration(self):
        telemetry = Telemetry()
        with telemetry.span("work") as span:
            pass
        assert span.duration >= 0.0
        assert telemetry.spans.find("work") is span

    def test_span_nesting_builds_paths(self):
        telemetry = Telemetry()
        with telemetry.span("outer"):
            with telemetry.span("inner") as inner:
                assert telemetry.spans.active_depth == 2
        assert inner.path == "outer/inner"
        assert inner.depth == 1
        timings = telemetry.spans.timings()
        assert set(timings) == {"outer", "outer/inner"}
        assert timings["outer"]["count"] == 1

    def test_sibling_spans_aggregate(self):
        telemetry = Telemetry()
        for _ in range(3):
            with telemetry.span("step"):
                pass
        assert telemetry.spans.timings()["step"]["count"] == 3

    def test_exception_still_closes_span(self):
        telemetry = Telemetry()
        with pytest.raises(ValueError):
            with telemetry.span("boom"):
                raise ValueError("x")
        assert telemetry.spans.active_depth == 0
        assert telemetry.spans.find("boom") is not None


class TestTrace:
    def test_emit_and_query(self):
        recorder = TraceRecorder()
        recorder.emit("job.phase", 0.5, job="J1", state="comm")
        recorder.emit("job.phase", 0.7, job="J2", state="comm")
        recorder.emit("rate.change", 0.7, job="J1", rate=1.0)
        assert len(recorder) == 3
        assert recorder.counts_by_kind() == {
            "job.phase": 2, "rate.change": 1,
        }
        assert [r.fields["job"] for r in recorder.of_kind("job.phase")] == [
            "J1", "J2",
        ]

    def test_record_equality_and_dict_round_trip(self):
        record = TraceRecord("k", 1.25, {"a": 1})
        assert TraceRecord.from_dict(record.to_dict()) == record

    def test_empty_kind_rejected(self):
        with pytest.raises(ConfigError):
            TraceRecord("", 0.0)

    def test_malformed_dict_rejected(self):
        with pytest.raises(ConfigError):
            TraceRecord.from_dict({"t": 1.0})


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        records = [
            TraceRecord("job.phase", 0.1, {"job": "J1", "state": "comm"}),
            TraceRecord("rate.change", 0.2, {"rate": 5.25e9}),
        ]
        path = tmp_path / "trace.jsonl"
        io.save_trace(records, path)
        assert io.load_trace(path) == records

    def test_header_is_versioned(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        io.save_trace([], path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"type": "trace", "version": io.FORMAT_VERSION}

    def test_missing_header_rejected(self):
        with pytest.raises(ConfigError):
            io.trace_from_jsonl('{"kind": "x", "t": 0.0}\n')

    def test_bad_version_rejected(self):
        with pytest.raises(ConfigError):
            io.trace_from_jsonl('{"type": "trace", "version": 99}\n')

    def test_manifest_round_trip(self, tmp_path):
        path = tmp_path / "manifest.json"
        io.save_manifest({"artifact": "figure1", "events": 3}, path)
        loaded = io.load_manifest(path)
        assert loaded["artifact"] == "figure1"
        assert loaded["events"] == 3


class TestDisabledPath:
    def test_null_accepts_everything(self):
        NULL.counter("x").inc()
        NULL.gauge("x").set(1)
        NULL.histogram("x").observe(1)
        NULL.event("kind", t=0.0, a=1)
        with NULL.span("s") as span:
            pass
        assert span.duration == 0.0
        assert len(NULL.trace) == 0
        assert NULL.registry.snapshot()["counters"] == {}

    def test_ambient_default_is_null(self):
        assert current() is NULL
        assert not current().enabled

    def test_use_installs_and_restores(self):
        telemetry = Telemetry()
        with use(telemetry):
            assert current() is telemetry
        assert current() is NULL

    def test_disabled_simulator_run_adds_zero_events(self, simple_pair):
        # The core satellite requirement: with telemetry disabled, a
        # Simulator-backed run must not record anything anywhere.
        before_events = len(NULL.trace)
        result = run_jobs(
            list(simple_pair), FairSharing(), n_iterations=3
        )
        assert result.jobs["J1"].iterations_done == 3
        assert len(NULL.trace) == before_events == 0
        assert NULL.registry.snapshot()["counters"] == {}

    def test_simulator_default_telemetry_is_disabled(self):
        sim = Simulator()
        assert sim.telemetry is NULL
        sim.schedule(0.0, lambda: None)
        sim.run()
        assert len(NULL.trace) == 0

    def test_enabled_simulator_traces_dispatches(self):
        telemetry = Telemetry()
        sim = Simulator(telemetry=telemetry)
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        dispatches = telemetry.trace.of_kind("sim.dispatch")
        assert [r.t for r in dispatches] == [1.0, 2.0]
        assert telemetry.counter("sim.events").value == 2


class TestPhasesimInstrumentation:
    def test_trace_covers_phases_rates_iterations(self, simple_pair):
        telemetry = Telemetry()
        run_jobs(
            list(simple_pair), FairSharing(), n_iterations=2,
            telemetry=telemetry,
        )
        kinds = telemetry.trace.counts_by_kind()
        assert kinds["job.iteration"] == 4  # 2 jobs x 2 iterations
        assert kinds["job.comm"] == 4
        assert kinds["job.phase"] >= 8  # compute + comm per iteration
        assert kinds["rate.change"] > 0
        assert kinds["sim.dispatch"] > 0

    def test_comm_records_carry_flow_bytes(self, simple_pair):
        telemetry = Telemetry()
        run_jobs(
            list(simple_pair), FairSharing(), n_iterations=2,
            telemetry=telemetry,
        )
        totals = flow_bytes(telemetry.trace.records)
        expected = 2 * simple_pair[0].comm_bytes
        assert totals["flow:J1:0"] == pytest.approx(expected)
        assert totals["flow:J2:0"] == pytest.approx(expected)


class TestRunRecorder:
    def test_records_trace_and_manifest(self, tmp_path, simple_pair):
        with RunRecorder("demo", runs_dir=tmp_path) as recorder:
            run_jobs(list(simple_pair), FairSharing(), n_iterations=2)
        run_dir = recorder.run_dir
        assert run_dir is not None
        manifest = io.load_manifest(run_dir / "manifest.json")
        records = io.load_trace(run_dir / "trace.jsonl")
        assert manifest["artifact"] == "demo"
        assert manifest["events"] == len(records) > 0
        assert manifest["failed"] is False
        assert "phasesim.iterations" in manifest["counters"]

    def test_failed_run_still_recorded(self, tmp_path):
        with pytest.raises(RuntimeError):
            with RunRecorder("boom", runs_dir=tmp_path) as recorder:
                current().event("x", t=0.0)
                raise RuntimeError("experiment crashed")
        manifest = io.load_manifest(recorder.run_dir / "manifest.json")
        assert manifest["failed"] is True
        assert manifest["events"] == 1

    def test_resolve_run_picks_latest(self, tmp_path, simple_pair):
        for _ in range(2):
            with RunRecorder("demo", runs_dir=tmp_path) as recorder:
                pass
        assert resolve_run("demo", runs_dir=tmp_path) == recorder.run_dir
        assert resolve_run(str(recorder.run_dir)) == recorder.run_dir

    def test_resolve_unknown_run_raises(self, tmp_path):
        with pytest.raises(ConfigError):
            resolve_run("nope", runs_dir=tmp_path)

    def test_stats_and_trace_reports(self, tmp_path, simple_pair):
        with RunRecorder("demo", runs_dir=tmp_path) as recorder:
            with current().span("experiment.demo"):
                run_jobs(list(simple_pair), FairSharing(), n_iterations=2)
        stats = stats_report(recorder.run_dir)
        assert "job.iteration" in stats
        assert "flow:J1:0" in stats
        assert "experiment.demo" in stats
        listing = trace_report(recorder.run_dir, kind="job.iteration")
        assert "job.iteration" in listing
        assert "rate.change" not in listing


class TestCliTelemetryCommands:
    def test_run_records_and_stats_summarizes(self, tmp_path, capsys):
        runs_dir = str(tmp_path / "runs")
        assert cli_main(
            ["run", "figure3", "--runs-dir", runs_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert cli_main(["stats", "figure3", "--runs-dir", runs_dir]) == 0
        out = capsys.readouterr().out
        assert "artifact figure3" in out
        assert "experiment.figure3" in out

    def test_no_record_writes_nothing(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        assert cli_main(
            ["run", "figure3", "--no-record", "--runs-dir", str(runs_dir)]
        ) == 0
        assert not runs_dir.exists()
        assert "telemetry:" not in capsys.readouterr().out

    def test_stats_unknown_run_fails_cleanly(self, tmp_path, capsys):
        assert cli_main(
            ["stats", "nope", "--runs-dir", str(tmp_path)]
        ) == 1
        assert "error:" in capsys.readouterr().err


class TestAblationsManifest:
    def test_solver_spans_reach_run_manifest(self, tmp_path):
        # The solver-comparison ablation times solvers through telemetry
        # spans; a recorded run must carry them in its manifest.
        with RunRecorder("ablations", runs_dir=tmp_path) as recorder:
            runs = ablations.solver_comparison()
        assert all(run.seconds >= 0.0 for run in runs)
        assert any(run.seconds > 0.0 for run in runs)
        manifest = io.load_manifest(recorder.run_dir / "manifest.json")
        span_paths = set(manifest["spans"])
        for solver in ("backtracking", "greedy", "annealing", "grid-36"):
            assert f"solver.{solver}" in span_paths, solver

    def test_solver_timings_without_session_still_measured(self):
        runs = ablations.solver_comparison()
        assert any(run.seconds > 0.0 for run in runs)
        # Nothing leaked into the disabled ambient session.
        assert len(NULL.trace) == 0
