"""Fixture tests for the whole-program (semantic) lint pass.

ARCH001/DET004/UNIT002 need more than one module to show their value,
so these tests build virtual multi-module trees through
:func:`repro.lint.lint_sources` — an upward import in one virtual file
and its target in another behave exactly like two files on disk.

The mutation tests encode the PR's acceptance criteria directly: strip
a ``us(...)`` wrapper from correct code and UNIT002 must catch it;
inject a substream-name collision and DET004 must catch it.
"""

from __future__ import annotations

import textwrap

from repro.lint import LintConfig, lint_paths, lint_sources
from repro.lint.config import config_from_table, load_config
from repro.lint.dimflow import dim_of_identifier
from repro.lint.taint import name_template, template_prefix

import ast


def lint_tree(sources, **kwargs):
    dedented = {
        path: textwrap.dedent(source)
        for path, source in sources.items()
    }
    return lint_sources(dedented, **kwargs)


def codes(findings):
    return [finding.code for finding in findings]


# ---------------------------------------------------------------- ARCH001


class TestLayerDag:
    def test_upward_import_flagged(self):
        found = lint_tree(
            {
                "repro/core/shapes.py": """
                from ..experiments.report import render

                def describe(arc):
                    return render(arc)
                """,
                "repro/experiments/report.py": """
                def render(arc):
                    return str(arc)
                """,
            },
            select=["ARCH001"],
        )
        assert codes(found) == ["ARCH001"]
        assert "`core`" in found[0].message
        assert "`experiments`" in found[0].message
        assert found[0].path == "repro/core/shapes.py"

    def test_downward_import_clean(self):
        found = lint_tree(
            {
                "repro/experiments/report.py": """
                from ..core.shapes import describe

                def render(arc):
                    return describe(arc)
                """,
                "repro/core/shapes.py": """
                def describe(arc):
                    return str(arc)
                """,
            },
            select=["ARCH001"],
        )
        assert found == []

    def test_type_checking_import_exempt(self):
        found = lint_tree(
            {
                "repro/core/shapes.py": """
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from ..experiments.report import Report

                def describe(report: "Report") -> str:
                    return str(report)
                """,
                "repro/experiments/report.py": """
                class Report:
                    pass
                """,
            },
            select=["ARCH001"],
        )
        assert found == []

    def test_lazy_function_import_still_upward(self):
        # The runtime dependency is real; only the *cycle* analysis
        # ignores lazy imports.
        found = lint_tree(
            {
                "repro/sim/engine.py": """
                def run():
                    from ..runner.spec import RunSpec
                    return RunSpec
                """,
                "repro/runner/spec.py": """
                class RunSpec:
                    pass
                """,
            },
            select=["ARCH001"],
        )
        assert codes(found) == ["ARCH001"]

    def test_cross_cutting_exempt_both_ways(self):
        found = lint_tree(
            {
                "repro/units.py": """
                from .telemetry.session import current
                """,
                "repro/telemetry/session.py": """
                from ..experiments.report import render

                def current():
                    return render(None)
                """,
                "repro/experiments/report.py": """
                def render(arc):
                    return str(arc)
                """,
            },
            select=["ARCH001"],
        )
        assert found == []

    def test_import_cycle_flagged(self):
        found = lint_tree(
            {
                "repro/sim/alpha.py": """
                from repro.sim.beta import bee

                def aye():
                    return bee
                """,
                "repro/sim/beta.py": """
                from repro.sim.alpha import aye

                def bee():
                    return aye
                """,
            },
            select=["ARCH001"],
        )
        assert codes(found) == ["ARCH001", "ARCH001"]
        assert all("cycle" in f.message for f in found)

    def test_lazy_import_breaks_cycle(self):
        found = lint_tree(
            {
                "repro/sim/alpha.py": """
                from repro.sim.beta import bee

                def aye():
                    return bee
                """,
                "repro/sim/beta.py": """
                def bee():
                    from repro.sim.alpha import aye
                    return aye
                """,
            },
            select=["ARCH001"],
        )
        assert found == []

    def test_suppression_silences_project_finding(self):
        found = lint_tree(
            {
                "repro/core/shapes.py": """
                from ..experiments.report import render  # simlint: disable=ARCH001 - test justification

                def describe(arc):
                    return render(arc)
                """,
                "repro/experiments/report.py": """
                def render(arc):
                    return str(arc)
                """,
            },
            select=["ARCH001"],
        )
        assert found == []

    def test_mutation_injected_upward_import_detected(self):
        # Acceptance mutation: the tree is clean until a foundation
        # module grows a runtime dependency on a driver layer.
        clean = {
            "repro/core/shapes.py": """
            def describe(arc):
                return str(arc)
            """,
            "repro/experiments/report.py": """
            from ..core.shapes import describe

            def render(arc):
                return describe(arc)
            """,
        }
        assert lint_tree(clean, select=["ARCH001"]) == []
        mutated = dict(clean)
        mutated["repro/core/shapes.py"] = """
        from ..experiments.report import render

        def describe(arc):
            return render(arc)
        """
        found = lint_tree(mutated, select=["ARCH001"])
        # One upward-import finding plus one cycle finding per member.
        assert codes(found) == ["ARCH001", "ARCH001", "ARCH001"]
        messages = " ".join(f.message for f in found)
        assert "upward import" in messages
        assert "cycle" in messages

    def test_custom_layering_from_table(self):
        config = config_from_table(
            {"layers": [["zoo"], ["core"]], "cross-cutting": []}
        )
        found = lint_tree(
            {
                "repro/zoo/pen.py": """
                from ..core.shapes import describe
                """,
                "repro/core/shapes.py": """
                def describe(arc):
                    return str(arc)
                """,
            },
            select=["ARCH001"],
            config=config,
        )
        assert codes(found) == ["ARCH001"]
        assert "`zoo`" in found[0].message


# ---------------------------------------------------------------- DET004


class TestSubstreamDiscipline:
    def test_collision_across_components_flagged(self):
        found = lint_tree(
            {
                "repro/net/flows.py": """
                def build(streams):
                    return streams.get("flow-gaps")
                """,
                "repro/workloads/arrivals.py": """
                def build(streams):
                    return streams.get("flow-gaps")
                """,
            },
            select=["DET004"],
        )
        assert codes(found) == ["DET004", "DET004"]
        assert all("2 components" in f.message for f in found)

    def test_same_component_reuse_clean(self):
        found = lint_tree(
            {
                "repro/net/flows.py": """
                def build(streams):
                    return streams.get("flow-gaps")
                """,
                "repro/net/links.py": """
                def build(streams):
                    return streams.get("flow-gaps")
                """,
            },
            select=["DET004"],
        )
        assert found == []

    def test_declared_shared_stream_clean(self):
        config = LintConfig(
            shared_streams={"flow-gaps": "declared for this test"}
        )
        found = lint_tree(
            {
                "repro/net/flows.py": """
                def build(streams):
                    return streams.get("flow-gaps")
                """,
                "repro/workloads/arrivals.py": """
                def build(streams):
                    return streams.get("flow-gaps")
                """,
            },
            select=["DET004"],
            config=config,
        )
        assert found == []

    def test_fstring_template_collision(self):
        found = lint_tree(
            {
                "repro/net/flows.py": """
                def build(streams, fid):
                    return streams.get(f"flow:{fid}")
                """,
                "repro/scheduler/queue.py": """
                def build(streams, jid):
                    return streams.get(f"flow:{jid}")
                """,
            },
            select=["DET004"],
        )
        assert codes(found) == ["DET004", "DET004"]
        assert "'flow:{}'" in found[0].message

    def test_foreign_draw_of_owned_prefix(self):
        # Default config: the "arrival" prefix belongs to `workloads`.
        found = lint_tree(
            {
                "repro/scheduler/queue.py": """
                def build(streams):
                    return streams.get("arrival-gaps")
                """,
            },
            select=["DET004"],
        )
        assert codes(found) == ["DET004"]
        assert "owned by component `workloads`" in found[0].message

    def test_owner_draw_clean(self):
        found = lint_tree(
            {
                "repro/workloads/traces.py": """
                def build(streams):
                    return streams.get("arrival-gaps")
                """,
            },
            select=["DET004"],
        )
        assert found == []

    def test_module_scope_draw_flagged(self):
        found = lint_tree(
            {
                "repro/net/flows.py": """
                from repro.sim.rng import RandomStreams

                _GEN = RandomStreams(0).get("flow-gaps")
                """,
            },
            select=["DET004"],
        )
        assert codes(found) == ["DET004"]
        assert "module scope" in found[0].message

    def test_public_attribute_store_flagged(self):
        found = lint_tree(
            {
                "repro/net/flows.py": """
                class FlowSource:
                    def __init__(self, streams):
                        self.rng = streams.get("flow-gaps")
                """,
            },
            select=["DET004"],
        )
        assert codes(found) == ["DET004"]
        assert "public attribute `rng`" in found[0].message

    def test_private_attribute_store_clean(self):
        found = lint_tree(
            {
                "repro/net/flows.py": """
                class FlowSource:
                    def __init__(self, streams):
                        self._rng = streams.get("flow-gaps")
                """,
            },
            select=["DET004"],
        )
        assert found == []

    def test_mutation_injected_collision_detected(self):
        # Acceptance mutation: the tree is clean until a second
        # component starts drawing an existing substream name.
        clean = {
            "repro/net/flows.py": """
            def build(streams):
                return streams.get("flow-gaps")
            """,
            "repro/scheduler/queue.py": """
            def build(streams):
                return streams.get("queue-jitter")
            """,
        }
        assert lint_tree(clean, select=["DET004"]) == []
        mutated = dict(clean)
        mutated["repro/scheduler/queue.py"] = """
        def build(streams):
            return streams.get("flow-gaps")
        """
        found = lint_tree(mutated, select=["DET004"])
        assert codes(found) == ["DET004", "DET004"]

    def test_template_helpers(self):
        assert template_prefix("arrival-gaps") == "arrival"
        assert template_prefix("job:{}") == "job"
        assert template_prefix("plain") == "plain"
        node = ast.parse('f"job:{jid}"', mode="eval").body
        assert name_template(node) == "job:{}"
        assert name_template(
            ast.parse('"literal"', mode="eval").body
        ) == "literal"
        assert name_template(
            ast.parse("dynamic", mode="eval").body
        ) is None


# ---------------------------------------------------------------- UNIT002


class TestDimensionMismatch:
    def test_seconds_plus_ticks_flagged(self):
        found = lint_tree(
            {
                "repro/net/delay.py": """
                def total(now_ticks, delay_s):
                    return now_ticks + delay_s
                """,
            },
            select=["UNIT002"],
        )
        assert codes(found) == ["UNIT002"]
        assert "seconds and ticks" in found[0].message

    def test_comparison_mismatch_flagged(self):
        found = lint_tree(
            {
                "repro/net/delay.py": """
                def expired(deadline_s, now_ticks):
                    return now_ticks >= deadline_s
                """,
            },
            select=["UNIT002"],
        )
        assert codes(found) == ["UNIT002"]
        assert "comparison" in found[0].message

    def test_explicit_conversion_clean(self):
        found = lint_tree(
            {
                "repro/net/delay.py": """
                from repro.units import seconds_to_ticks

                def total(now_ticks, delay_s, tps):
                    return now_ticks + seconds_to_ticks(delay_s, tps)
                """,
            },
            select=["UNIT002"],
        )
        assert found == []

    def test_units_helper_arg_mismatch(self):
        found = lint_tree(
            {
                "repro/net/delay.py": """
                from repro.units import us

                def window(gap_ms):
                    return us(gap_ms)
                """,
            },
            select=["UNIT002"],
        )
        assert codes(found) == ["UNIT002"]
        assert "units.us() expects microseconds" in found[0].message

    def test_cross_module_call_edge_mismatch(self):
        found = lint_tree(
            {
                "repro/net/delay.py": """
                def wait(timeout_s):
                    return timeout_s
                """,
                "repro/cc/loop.py": """
                from repro.net.delay import wait

                def step(now_ticks):
                    return wait(now_ticks)
                """,
            },
            select=["UNIT002"],
        )
        assert codes(found) == ["UNIT002"]
        assert found[0].path == "repro/cc/loop.py"
        assert "`timeout_s`" in found[0].message
        assert "expects seconds" in found[0].message

    def test_cross_module_keyword_edge_mismatch(self):
        found = lint_tree(
            {
                "repro/net/delay.py": """
                def wait(timeout_s=0.0):
                    return timeout_s
                """,
                "repro/cc/loop.py": """
                from repro.net.delay import wait

                def step(now_ticks):
                    return wait(timeout_s=now_ticks)
                """,
            },
            select=["UNIT002"],
        )
        assert codes(found) == ["UNIT002"]

    def test_matching_call_edge_clean(self):
        found = lint_tree(
            {
                "repro/net/delay.py": """
                def wait(timeout_s):
                    return timeout_s
                """,
                "repro/cc/loop.py": """
                from repro.net.delay import wait

                def step(budget_s):
                    return wait(budget_s)
                """,
            },
            select=["UNIT002"],
        )
        assert found == []

    def test_ticks_per_second_misuse_flagged(self):
        found = lint_tree(
            {
                "repro/net/delay.py": """
                from repro.units import TICKS_PER_SECOND

                def convert(delay_ms):
                    return delay_ms * TICKS_PER_SECOND
                """,
            },
            select=["UNIT002"],
        )
        assert codes(found) == ["UNIT002"]
        assert "expects seconds" in found[0].message

    def test_mutation_dropped_us_wrapper_detected(self):
        # Acceptance mutation: remove the us(...) conversion from
        # correct code and the mix must surface.
        correct = {
            "repro/net/delay.py": """
            from repro.units import us

            def window(base_s, gap_us):
                return base_s + us(gap_us)
            """,
        }
        assert lint_tree(correct, select=["UNIT002"]) == []
        mutated = {
            "repro/net/delay.py": """
            def window(base_s, gap_us):
                return base_s + gap_us
            """,
        }
        found = lint_tree(mutated, select=["UNIT002"])
        assert codes(found) == ["UNIT002"]
        assert "microseconds" in found[0].message

    def test_unknown_operands_stay_silent(self):
        found = lint_tree(
            {
                "repro/net/delay.py": """
                def mix(a, b):
                    return a + b
                """,
            },
            select=["UNIT002"],
        )
        assert found == []

    def test_dim_of_identifier_conventions(self):
        assert dim_of_identifier("delay_s") == "seconds"
        assert dim_of_identifier("gap_us") == "microseconds"
        assert dim_of_identifier("now_ticks") == "ticks"
        assert dim_of_identifier("size_bytes") == "bytes"
        assert dim_of_identifier("rate_bytes_per_s") == "bytes/s"
        assert dim_of_identifier("ticks") == "ticks"
        assert dim_of_identifier("_s") is None
        assert dim_of_identifier("plain") is None


# ----------------------------------------------------------- determinism


class TestDeterminism:
    FIXTURE = {
        "repro/net/flows.py": """
        def build(streams):
            return streams.get("flow-gaps")
        """,
        "repro/workloads/arrivals.py": """
        def build(streams):
            return streams.get("flow-gaps")
        """,
        "repro/core/shapes.py": """
        from ..experiments.report import render
        """,
        "repro/experiments/report.py": """
        def render(arc):
            return str(arc)
        """,
    }

    def test_discovery_order_does_not_matter(self):
        forward = lint_tree(dict(self.FIXTURE))
        backward = lint_tree(
            dict(reversed(list(self.FIXTURE.items())))
        )
        assert forward == backward
        assert forward  # the fixture is intentionally dirty

    def test_jobs_parity_on_disk(self, tmp_path):
        root = tmp_path / "repro"
        for path, source in self.FIXTURE.items():
            target = tmp_path / path
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(
                textwrap.dedent(source), encoding="utf-8"
            )
        (root / "__init__.py").write_text("", encoding="utf-8")
        config = load_config()  # the repo's own table
        serial = lint_paths([str(root)], jobs=1, config=config)
        parallel = lint_paths([str(root)], jobs=4, config=config)
        assert serial.findings == parallel.findings
        assert serial.to_dict() == parallel.to_dict()
        assert serial.findings  # the fixture is intentionally dirty
