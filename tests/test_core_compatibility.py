"""CompatibilityChecker facade, rotation conversions, and metrics tests."""

import numpy as np
import pytest

from repro.core.circle import JobCircle
from repro.core.compatibility import CompatibilityChecker
from repro.core.metrics import (
    compatibility_score,
    min_overlap,
    overlap_ticks,
    pairwise_compatibility_matrix,
)
from repro.core.rotation import (
    CommWindow,
    communication_schedule,
    degrees_to_rotation,
    rotation_to_degrees,
    rotation_to_seconds,
)
from repro.core.unified import UnifiedCircle
from repro.errors import CompatibilityError, GeometryError
from repro.units import gbps, ms
from repro.workloads.job import JobSpec

CAP = gbps(42)


def _spec(name, compute_ms, comm_ms):
    return JobSpec(
        job_id=name, compute_time=ms(compute_ms),
        comm_bytes=ms(comm_ms) * CAP,
    )


class TestChecker:
    def test_compatible_pair(self):
        result = CompatibilityChecker(capacity=CAP).check(
            [_spec("a", 210, 90), _spec("b", 210, 90)]
        )
        assert result.compatible
        assert result.certified
        assert result.overlap_ticks == 0
        assert set(result.rotations) == {"a", "b"}

    def test_rotations_are_a_real_certificate(self):
        checker = CompatibilityChecker(capacity=CAP)
        specs = [_spec("a", 210, 90), _spec("b", 210, 90)]
        result = checker.check(specs)
        circles = checker.circles(specs)
        assert UnifiedCircle(circles).overlap_ticks(result.rotations) == 0

    def test_incompatible_pair_certified(self):
        result = CompatibilityChecker(capacity=CAP).check(
            [_spec("a", 100, 110), _spec("b", 100, 110)]
        )
        assert not result.compatible
        assert result.certified
        assert result.utilization > 1.0

    def test_different_periods(self):
        # Figure 5: periods 40/60, arcs 10/10 -> compatible.
        result = CompatibilityChecker(capacity=CAP).check(
            [_spec("a", 30, 10), _spec("b", 50, 10)]
        )
        assert result.compatible
        assert result.unified_perimeter == 120

    def test_single_job_trivially_compatible(self):
        result = CompatibilityChecker(capacity=CAP).check(
            [_spec("only", 100, 50)]
        )
        assert result.compatible

    def test_empty_rejected(self):
        with pytest.raises(CompatibilityError):
            CompatibilityChecker().check([])

    def test_overlap_fraction(self):
        result = CompatibilityChecker(capacity=CAP).check(
            [_spec("a", 100, 110), _spec("b", 100, 110)]
        )
        assert 0 < result.overlap_fraction <= 1

    def test_rotation_seconds(self):
        checker = CompatibilityChecker(capacity=CAP, ticks_per_second=1000)
        result = checker.check([_spec("a", 30, 10), _spec("b", 50, 10)])
        seconds = checker.rotation_seconds(result)
        for job_id, ticks in result.rotations.items():
            assert seconds[job_id] == pytest.approx(ticks / 1000)

    def test_coverage_capacity_two(self):
        checker = CompatibilityChecker(capacity=CAP, coverage_capacity=2)
        # Two always-colliding jobs are fine when two may share.
        result = checker.check([_spec("a", 100, 110), _spec("b", 100, 110)])
        assert result.compatible

    def test_invalid_config_rejected(self):
        with pytest.raises(CompatibilityError):
            CompatibilityChecker(ticks_per_second=0)
        with pytest.raises(CompatibilityError):
            CompatibilityChecker(coverage_capacity=0)

    def test_table1_verdicts_match_paper(self):
        from repro.workloads.profiles import table1_groups

        checker = CompatibilityChecker()
        for group in table1_groups():
            result = checker.check(group.specs)
            assert result.compatible == group.paper_compatible, group.name
            assert result.certified, group.name


class TestRotationConversions:
    def test_degrees_roundtrip(self):
        assert rotation_to_degrees(10, 120) == pytest.approx(30.0)
        assert degrees_to_rotation(30.0, 120) == 10

    def test_degrees_wraps(self):
        assert rotation_to_degrees(130, 120) == pytest.approx(30.0)

    def test_seconds(self):
        assert rotation_to_seconds(250, 1000) == pytest.approx(0.25)

    def test_bad_inputs_rejected(self):
        with pytest.raises(GeometryError):
            rotation_to_degrees(1, 0)
        with pytest.raises(GeometryError):
            degrees_to_rotation(30.0, 0)
        with pytest.raises(GeometryError):
            rotation_to_seconds(1, 0)


class TestCommunicationSchedule:
    def test_windows_cover_comm(self):
        circles = [
            JobCircle.from_phases("a", 30, 10),
            JobCircle.from_phases("b", 50, 10),
        ]
        rotations = {"a": 0, "b": 10}
        schedule = communication_schedule(circles, rotations)
        assert len(schedule["a"]) == 3  # tiles on the 120 circle
        assert len(schedule["b"]) == 2
        total_a = sum(w.length for w in schedule["a"])
        assert total_a == 30

    def test_compatible_windows_disjoint(self):
        circles = [
            JobCircle.from_phases("a", 80, 20),
            JobCircle.from_phases("b", 80, 20),
        ]
        schedule = communication_schedule(circles, {"a": 0, "b": 30})
        spans = [
            (w.start, w.start + w.length)
            for windows in schedule.values()
            for w in windows
        ]
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_window_period_is_unified(self):
        circles = [
            JobCircle.from_phases("a", 30, 10),
            JobCircle.from_phases("b", 50, 10),
        ]
        schedule = communication_schedule(circles, {})
        assert all(
            w.period == 120
            for windows in schedule.values()
            for w in windows
        )


class TestMetrics:
    def test_overlap_ticks_at_zero_rotation(self):
        circles = [
            JobCircle.from_phases("a", 80, 20),
            JobCircle.from_phases("b", 80, 20),
        ]
        assert overlap_ticks(circles) == 20
        assert overlap_ticks(circles, {"b": 50}) == 0

    def test_min_overlap_compatible_is_zero(self):
        circles = [
            JobCircle.from_phases("a", 80, 20),
            JobCircle.from_phases("b", 80, 20),
        ]
        best, rotations = min_overlap(circles)
        assert best == 0
        assert UnifiedCircle(circles).overlap_ticks(rotations) == 0

    def test_min_overlap_incompatible_bounded_below(self):
        circles = [
            JobCircle.from_phases("a", 40, 60),
            JobCircle.from_phases("b", 40, 60),
        ]
        best, _ = min_overlap(circles)
        assert best >= 20  # 120 demand into a 100 period

    def test_score_range(self):
        compatible = [
            JobCircle.from_phases("a", 80, 20),
            JobCircle.from_phases("b", 80, 20),
        ]
        assert compatibility_score(compatible) == 1.0
        clash = [
            JobCircle.from_phases("a", 0, 100),
            JobCircle.from_phases("b", 0, 100),
        ]
        assert compatibility_score(clash) < 0.6

    def test_pairwise_matrix(self):
        circles = [
            JobCircle.from_phases("a", 210, 90),
            JobCircle.from_phases("b", 210, 90),
            JobCircle.from_phases("c", 100, 110),  # too big for anyone
        ]
        matrix = pairwise_compatibility_matrix(circles)
        assert matrix.shape == (3, 3)
        assert matrix[0, 1] and matrix[1, 0]
        assert not matrix[0, 2] and not matrix[2, 0]
        assert np.all(np.diag(matrix))
