"""Simulator-loop tests: clock semantics, run bounds, stop/reset."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_relative(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]

    def test_schedule_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(2.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.schedule_at(0.5, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_chain(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(("first", sim.now))
            sim.schedule(1.0, second)

        def second():
            seen.append(("second", sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == [("first", 1.0), ("second", 2.0)]

    def test_args_passed(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.1, seen.append, "payload")
        sim.run()
        assert seen == ["payload"]


class TestRunBounds:
    def test_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        end = sim.run(until=10.0)
        assert end == 10.0
        assert sim.now == 10.0

    def test_until_excludes_later_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "early")
        sim.schedule(5.0, seen.append, "late")
        sim.run(until=2.0)
        assert seen == ["early"]
        # The late event survives for a further run.
        sim.run()
        assert seen == ["early", "late"]

    def test_max_events(self):
        sim = Simulator()
        seen = []
        for i in range(5):
            sim.schedule(float(i + 1), seen.append, i)
        sim.run(max_events=3)
        assert seen == [0, 1, 2]

    def test_stop_from_event(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: (seen.append("a"), sim.stop()))
        sim.schedule(2.0, seen.append, "b")
        sim.run()
        assert seen[-1] != "b"

    def test_events_executed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_executed == 4

    def test_cancel_pending(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, seen.append, "nope")
        sim.cancel(event)
        sim.run()
        assert seen == []
        assert sim.pending_events == 0


class TestReset:
    def test_reset_rewinds(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.events_executed == 0
        assert sim.pending_events == 0

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(errors) == 1
