"""Shared job-lifecycle core: state machine, timeline, skip semantics.

The refactor's contract is that every fidelity tier drives the *same*
``JobLifecycle``/``JobTimeline`` pair, so the schema and the warm-up
``skip`` behaviour are defined exactly once. These tests pin the core in
isolation and then assert the cross-tier invariant the experiments rely
on: asking for a mean/median with ``skip`` >= completed iterations
raises :class:`SimulationError` on every tier's timeline.
"""

import math

import numpy as np
import pytest

from repro.cc.aimd import AimdFluidSimulator, AimdParams
from repro.cc.fair import FairSharing
from repro.core.lifecycle import JobLifecycle, JobState, OnOffSource
from repro.core.timeline import IterationSample, JobTimeline
from repro.errors import ConfigError, SimulationError, WorkloadError
from repro.faults import InjectionSchedule, LinkFailure
from repro.net.routing import Router
from repro.net.topology import Topology
from repro.runner import RunSpec, ScenarioSpec, SenderSpec, execute
from repro.scheduler.cluster import ClusterState
from repro.scheduler.simulation import ClusterSimulation
from repro.units import gbps, ms
from repro.workloads.job import JobSpec


def sample(index, start, comm_start, end):
    return IterationSample(
        index=index, start=start, comm_start=comm_start, end=end
    )


class TestIterationSample:
    def test_durations(self):
        s = sample(0, 1.0, 1.4, 2.0)
        assert s.duration == pytest.approx(1.0)
        assert s.compute_duration == pytest.approx(0.4)
        assert s.comm_duration == pytest.approx(0.6)

    def test_row_round_trip(self):
        s = sample(3, 0.5, 0.75, 1.25)
        assert IterationSample.from_row(s.to_row()) == s


class TestJobTimeline:
    def timeline(self, n=3, period=1.0):
        t = JobTimeline("J")
        for i in range(n):
            t.record(
                sample(i, i * period, i * period + 0.4, (i + 1) * period)
            )
        return t

    def test_record_enforces_contiguous_indexes(self):
        t = JobTimeline("J")
        with pytest.raises(SimulationError):
            t.record(sample(1, 0.0, 0.4, 1.0))

    def test_views(self):
        t = self.timeline(3)
        assert len(t) == 3
        assert t.iterations == 3
        assert [s.index for s in t] == [0, 1, 2]
        np.testing.assert_allclose(t.iteration_starts, [0.0, 1.0, 2.0])
        np.testing.assert_allclose(t.iteration_ends, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(t.iteration_times(), [1.0, 1.0, 1.0])
        np.testing.assert_allclose(t.comm_times(), [0.6, 0.6, 0.6])
        np.testing.assert_allclose(t.compute_times(), [0.4, 0.4, 0.4])

    def test_skip_drops_warmup(self):
        t = self.timeline(4)
        assert t.iteration_times(skip=2).size == 2
        assert t.mean_iteration_time(skip=3) == pytest.approx(1.0)

    def test_negative_skip_rejected(self):
        with pytest.raises(SimulationError):
            self.timeline().iteration_times(skip=-1)

    def test_skip_consuming_all_iterations_raises(self):
        t = self.timeline(3)
        for skip in (3, 10):
            with pytest.raises(SimulationError, match="after skip"):
                t.mean_iteration_time(skip=skip)
            with pytest.raises(SimulationError, match="after skip"):
                t.median_iteration_time(skip=skip)

    def test_rows_round_trip(self):
        t = self.timeline(3)
        clone = JobTimeline.from_rows(t.job_id, t.to_rows())
        assert clone.samples == t.samples
        assert clone.job_id == "J"


class TestJobLifecycle:
    def test_rejects_empty_segments(self):
        with pytest.raises(ConfigError):
            JobLifecycle("J", segments=())

    def test_rejects_bad_segment(self):
        with pytest.raises(ConfigError):
            JobLifecycle("J", segments=((-0.1, 100.0),))
        with pytest.raises(ConfigError):
            JobLifecycle("J", segments=((0.1, 0.0),))

    def test_rejects_bad_iteration_budget(self):
        with pytest.raises(WorkloadError):
            JobLifecycle("J", segments=((0.1, 100.0),), n_iterations=0)

    def test_rejects_negative_offset(self):
        with pytest.raises(ConfigError):
            JobLifecycle(
                "J", segments=((0.1, 100.0),), start_offset=-1.0
            )

    def test_jitter_requires_rng(self):
        with pytest.raises(ConfigError):
            JobLifecycle(
                "J", segments=((0.1, 100.0),), compute_jitter=0.1
            )

    def test_single_segment_walk(self):
        lc = JobLifecycle("J", segments=((0.1, 100.0),), n_iterations=2)
        assert lc.begin_iteration(0.0) == pytest.approx(0.1)
        assert lc.state is JobState.COMPUTE
        assert lc.begin_comm(0.1) == pytest.approx(100.0)
        assert lc.state is JobState.COMM
        lc.credit(60.0)
        assert lc.remaining_bytes == pytest.approx(40.0)
        lc.credit(40.0)
        done_sample = lc.close_iteration(0.3)
        assert done_sample.index == 0
        assert done_sample.comm_start == pytest.approx(0.1)
        assert not lc.done
        lc.begin_iteration(0.3)
        lc.begin_comm(0.4)
        lc.credit(100.0)
        lc.close_iteration(0.6)
        assert lc.done
        assert lc.iterations_done == 2
        with pytest.raises(SimulationError):
            lc.begin_iteration(0.6)

    def test_multi_segment_walk(self):
        lc = JobLifecycle(
            "J", segments=((0.1, 50.0), (0.05, 30.0)), n_iterations=1
        )
        lc.begin_iteration(0.0)
        assert lc.n_segments == 2
        assert lc.begin_comm(0.1) == pytest.approx(50.0)
        assert lc.has_more_segments
        assert lc.advance_segment(0.2) == pytest.approx(0.05)
        assert not lc.has_more_segments
        assert lc.begin_comm(0.25) == pytest.approx(30.0)
        done_sample = lc.close_iteration(0.3)
        # comm_start pins the iteration's *first* burst.
        assert done_sample.comm_start == pytest.approx(0.1)
        assert lc.done

    def test_gate_may_only_delay(self):
        lc = JobLifecycle(
            "J",
            segments=((0.1, 100.0),),
            gate=lambda job_id, now: now - 1.0,
        )
        lc.begin_iteration(0.0)
        with pytest.raises(SimulationError, match="past time"):
            lc.release_time(0.1)

    def test_gate_release_and_waiting(self):
        lc = JobLifecycle(
            "J",
            segments=((0.1, 100.0),),
            gate=lambda job_id, now: now + 0.5,
        )
        lc.begin_iteration(0.0)
        assert lc.release_time(0.1) == pytest.approx(0.6)
        lc.enter_waiting()
        assert lc.state is JobState.WAITING

    def test_ungated_release_is_now(self):
        lc = JobLifecycle("J", segments=((0.1, 100.0),))
        lc.begin_iteration(0.0)
        assert lc.release_time(0.25) == pytest.approx(0.25)

    def test_zero_jitter_never_touches_rng(self):
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        lc = JobLifecycle(
            "J", segments=((0.1, 100.0),), rng=rng, compute_jitter=0.0
        )
        assert lc.sample_compute_factor() == 1.0
        assert rng.bit_generator.state == before

    def test_jitter_draws_from_rng(self):
        factors = {
            JobLifecycle(
                "J",
                segments=((0.1, 100.0),),
                rng=np.random.default_rng(seed),
                compute_jitter=0.2,
            ).sample_compute_factor()
            for seed in range(4)
        }
        assert len(factors) == 4
        assert all(f >= 0.0 for f in factors)

    def test_for_spec_uses_effective_segments(self):
        spec = JobSpec("J", compute_time=0.1, comm_bytes=100.0)
        lc = JobLifecycle.for_spec(spec, n_iterations=3)
        assert lc.n_segments == len(spec.effective_segments())
        assert lc.segment_comm_bytes() == pytest.approx(
            spec.effective_segments()[0][1]
        )


class _ConstantRateSender:
    """Minimal fluid-sender protocol: drain at a fixed rate."""

    def __init__(self, rate, data_bytes):
        self.rate = rate
        self.remaining = data_bytes

    @property
    def done(self):
        return self.remaining <= 0

    def step(self, now, dt, marking_probability):
        sent = min(self.rate * dt, self.remaining)
        self.remaining -= sent
        return sent


class TestOnOffSource:
    def source(self, n_iterations=2, rate=1000.0):
        lifecycle = JobLifecycle(
            "J", segments=((0.01, 10.0),), n_iterations=n_iterations
        )
        return OnOffSource(
            "J", lifecycle, lambda b: _ConstantRateSender(rate, b)
        )

    def test_silent_while_computing(self):
        source = self.source()
        assert source.step(0.0, 0.001, 0.0) == 0.0
        assert source.rate == 0.0

    def test_completes_iteration_budget(self):
        source = self.source(n_iterations=2)
        now, dt = 0.0, 0.001
        for _ in range(200):
            if source.done:
                break
            source.step(now, dt, 0.0)
            now += dt
        assert source.done
        assert len(source.timeline) == 2
        assert source.iteration_times().size == 2
        # Post-completion steps are inert.
        assert source.step(now, dt, 0.0) == 0.0

    def test_timeline_shape(self):
        source = self.source(n_iterations=1)
        now, dt = 0.0, 0.001
        while not source.done:
            source.step(now, dt, 0.0)
            now += dt
        [s] = source.timeline.samples
        assert s.start == pytest.approx(0.0)
        assert 0.0 < s.comm_start < s.end


CAP = gbps(42)


def phase_run(n_iterations=3):
    spec = RunSpec(
        backend="phase",
        seed=0,
        jobs=(JobSpec("J1", ms(10), ms(5) * CAP),),
        policy=FairSharing(),
        n_iterations=n_iterations,
        capacity=CAP,
    )
    return execute(spec)


def engine_run(n_iterations=3):
    spec = RunSpec(
        backend="engine",
        seed=0,
        jobs=(JobSpec("J1", ms(10), ms(5) * CAP),),
        policy=FairSharing(),
        n_iterations=n_iterations,
        capacity=CAP,
    )
    return execute(spec)


def fluid_run():
    spec = RunSpec(
        backend="fluid",
        seed=0,
        capacity=gbps(50),
        duration=0.03,
        options=(("dt", 20e-6),),
        scenarios=(
            ScenarioSpec(
                "only",
                (
                    SenderSpec(
                        "J1",
                        125e-6,
                        compute_time=0.002,
                        comm_bytes=gbps(50) * 0.001,
                    ),
                ),
            ),
        ),
    )
    return execute(spec)


def aimd_run():
    sim = AimdFluidSimulator(capacity=gbps(50), dt=20e-6)
    sim.add_job(
        "J1", compute_time=0.002, comm_bytes=gbps(50) * 0.001,
        # High rate floor: bursts drain quickly even without ramp-up,
        # so the short run completes several iterations.
        params=AimdParams(line_rate=gbps(50), min_rate=gbps(10)),
    )
    return sim.run(0.05)


def cluster_run():
    topology = Topology.leaf_spine(
        n_racks=2, hosts_per_rack=1, n_spines=1,
        host_capacity=CAP, uplink_capacity=CAP,
    )
    spec = RunSpec(
        backend="cluster",
        seed=0,
        policy=FairSharing(),
        topology=topology,
        n_iterations=5,
        capacity=CAP,
        options=(
            (
                "placements",
                (
                    (
                        JobSpec("J1", ms(10), ms(5) * CAP, n_workers=2),
                        ("h0_0", "h1_0"),
                    ),
                ),
            ),
            ("warmup_iterations", 1),
        ),
    )
    return execute(spec)


class TestSkipSemanticsAcrossTiers:
    """skip >= completed iterations raises SimulationError on every tier."""

    def check(self, timeline):
        n = len(timeline)
        assert n > 0
        assert timeline.mean_iteration_time(skip=n - 1) > 0
        with pytest.raises(SimulationError, match="after skip"):
            timeline.mean_iteration_time(skip=n)
        with pytest.raises(SimulationError, match="after skip"):
            timeline.median_iteration_time(skip=n)

    def test_phase_backend(self):
        self.check(phase_run().timelines()["J1"])

    def test_engine_backend(self):
        self.check(engine_run().timelines()["J1"])

    def test_fluid_backend(self):
        self.check(fluid_run().timelines()["J1"])

    def test_aimd_simulator(self):
        result = aimd_run()
        self.check(result.timeline("J1"))
        with pytest.raises(SimulationError, match="after skip"):
            result.mean_iteration_time(
                "J1", skip=len(result.timeline("J1"))
            )

    def test_cluster_backend(self):
        self.check(cluster_run().timelines()["J1"])


class TestAimdOnOffJobs:
    def test_jobs_record_timelines(self):
        result = aimd_run()
        timeline = result.timeline("J1")
        assert len(timeline) >= 2
        assert (timeline.iteration_times() > 0.002).all()

    def test_unknown_timeline_rejected(self):
        result = aimd_run()
        with pytest.raises(SimulationError, match="no timeline"):
            result.timeline("nope")

    def test_jobs_share_with_plain_senders(self):
        sim = AimdFluidSimulator(capacity=gbps(50), dt=20e-6)
        sim.add_sender("bg")
        sim.add_job("J1", compute_time=0.002, comm_bytes=gbps(50) * 0.001)
        result = sim.run(0.05)
        assert "J1" in result.timelines
        assert "bg" not in result.timelines
        assert result.mean_rate("bg") > 0

    def test_timelines_identical_across_engines(self):
        # The vectorized span engine must reproduce the scalar loop's
        # lifecycle clockwork exactly: byte-identical timelines.
        timelines = {}
        for engine in ("scalar", "vector"):
            sim = AimdFluidSimulator(
                capacity=gbps(50), dt=20e-6, engine=engine
            )
            sim.add_sender("bg")
            sim.add_job(
                "J1", compute_time=0.002, comm_bytes=gbps(50) * 0.001
            )
            timelines[engine] = sim.run(0.1).timeline("J1")
        assert len(timelines["scalar"]) >= 2
        assert (
            repr(timelines["scalar"].__dict__)
            == repr(timelines["vector"].__dict__)
        )

    def test_cluster_simulation_reports_timelines(self):
        topology = Topology.leaf_spine(
            n_racks=2, hosts_per_rack=1, n_spines=1,
            host_capacity=CAP, uplink_capacity=CAP,
        )
        cluster = ClusterState(
            topology, gpus_per_host=4, router=Router(topology)
        )
        cluster.place(
            JobSpec("J1", ms(10), ms(5) * CAP, n_workers=2),
            ["h0_0", "h1_0"],
        )
        report = ClusterSimulation(
            cluster, reference_capacity=CAP
        ).run(FairSharing(), n_iterations=5, warmup_iterations=1)
        assert isinstance(report.timelines["J1"], JobTimeline)
        assert len(report.timelines["J1"]) == 5


#: A link failure spanning far past any horizon used below: every job
#: behind it completes zero iterations.
STARVE = InjectionSchedule(events=(LinkFailure("L1", 0.0, 100.0),))


class TestStarvedJobsAcrossTiers:
    """A job starved for the whole run must not crash or hang.

    The contract across every tier: the timeline comes back as a
    well-formed *empty* :class:`JobTimeline` and asking for a mean
    raises the canonical "no iterations after skip" error — the same
    one the warmup-skip path raises — rather than a crash, a division
    by zero, or an unbounded simulation loop.
    """

    def check_empty(self, timeline):
        assert isinstance(timeline, JobTimeline)
        assert len(timeline) == 0
        assert timeline.iterations == 0
        assert list(timeline) == []
        with pytest.raises(SimulationError, match="after skip"):
            timeline.mean_iteration_time(skip=0)

    def test_phase_backend(self):
        spec = RunSpec(
            backend="phase",
            seed=0,
            jobs=(JobSpec("J1", ms(10), ms(5) * CAP),),
            policy=FairSharing(),
            n_iterations=3,
            capacity=CAP,
            until=0.5,
            faults=STARVE,
        )
        self.check_empty(execute(spec).timelines()["J1"])

    def test_engine_backend(self):
        spec = RunSpec(
            backend="engine",
            seed=0,
            jobs=(JobSpec("J1", ms(10), ms(5) * CAP),),
            policy=FairSharing(),
            n_iterations=3,
            capacity=CAP,
            until=0.5,
            faults=STARVE,
        )
        self.check_empty(execute(spec).timelines()["J1"])

    @pytest.mark.parametrize("engine", ["scalar", "vector"])
    def test_fluid_backend(self, engine):
        spec = RunSpec(
            backend="fluid",
            seed=0,
            capacity=gbps(50),
            duration=0.03,
            options=(("dt", 20e-6), ("engine", engine)),
            scenarios=(
                ScenarioSpec(
                    "only",
                    (
                        SenderSpec(
                            "J1",
                            125e-6,
                            compute_time=0.002,
                            comm_bytes=gbps(50) * 0.001,
                        ),
                    ),
                ),
            ),
            faults=STARVE,
        )
        self.check_empty(execute(spec).timelines()["J1"])

    @pytest.mark.parametrize("engine", ["scalar", "vector"])
    def test_aimd_simulator(self, engine):
        sim = AimdFluidSimulator(
            capacity=gbps(50), dt=20e-6, engine=engine, faults=STARVE
        )
        sim.add_job(
            "J1", compute_time=0.002, comm_bytes=gbps(50) * 0.001,
            params=AimdParams(line_rate=gbps(50), min_rate=gbps(10)),
        )
        result = sim.run(0.05)
        self.check_empty(result.timeline("J1"))
        with pytest.raises(SimulationError, match="after skip"):
            result.mean_iteration_time("J1", skip=0)

    def test_cluster_backend_reports_nan(self):
        topology = Topology.leaf_spine(
            n_racks=2, hosts_per_rack=1, n_spines=1,
            host_capacity=CAP, uplink_capacity=CAP,
        )
        cluster = ClusterState(topology)
        cluster.place(
            JobSpec("J1", ms(10), ms(5) * CAP, n_workers=2),
            ("h0_0", "h1_0"),
        )
        faults = InjectionSchedule(
            events=(LinkFailure("h0_0->tor0", 0.0, 100.0),)
        )
        report = ClusterSimulation(cluster, reference_capacity=CAP).run(
            FairSharing(), n_iterations=3, warmup_iterations=1,
            until=0.5, faults=faults,
        )
        self.check_empty(report.timelines["J1"])
        # The report degrades to nan instead of crashing.
        assert math.isnan(report.iteration_ms["J1"])
        assert math.isnan(report.slowdown["J1"])
