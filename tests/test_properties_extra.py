"""Property-based tests for the extension subsystems.

Covers invariants the first property suite predates: cluster-level
certificates, fractional-vs-integer overlap consistency, profiler
round-trips, gate admissibility, single-port scheduler equivalences, and
serialization round-trips.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.circle import JobCircle
from repro.core.cluster_compat import ClusterCompatibilityProblem
from repro.core.rotation import CommWindow
from repro.core.unified import UnifiedCircle
from repro.io import job_spec_from_dict, job_spec_to_dict
from repro.mechanisms.flow_scheduling import PeriodicGate
from repro.net.flows import Flow
from repro.net.fluid import FluidAllocator
from repro.net.topology import Link
from repro.switches.priority import StrictPriorityScheduler
from repro.units import gbps
from repro.workloads.job import JobSpec
from repro.workloads.profiler import profile_trace
from repro.workloads.traces import demand_trace


@st.composite
def circle_params(draw, max_period=60):
    period = draw(st.integers(4, max_period))
    comm = draw(st.integers(1, period - 1))
    return period - comm, comm


class TestClusterCompatProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(circle_params(max_period=40), min_size=3, max_size=4))
    def test_chain_solutions_verify_per_link(self, params):
        circles = [
            JobCircle.from_phases(f"j{i}", compute, comm)
            for i, (compute, comm) in enumerate(params)
        ]
        links_by_job = {}
        for index in range(len(circles)):
            links = []
            if index > 0:
                links.append(f"L{index - 1}")
            if index < len(circles) - 1:
                links.append(f"L{index}")
            links_by_job[f"j{index}"] = links
        problem = ClusterCompatibilityProblem.from_assignments(
            circles, links_by_job
        )
        result = problem.solve()
        if result.compatible:
            # Certificate must hold on every contended link.
            for link, sharers in problem.contended_links().items():
                sub = [c for c in circles if c.job_id in sharers]
                rotations = {j: result.rotations[j] for j in sharers}
                assert UnifiedCircle(sub).overlap_ticks(rotations) == 0

    @settings(max_examples=25, deadline=None)
    @given(st.lists(circle_params(max_period=40), min_size=2, max_size=3))
    def test_single_shared_link_matches_plain_solver(self, params):
        from repro.core.optimize import solve

        circles = [
            JobCircle.from_phases(f"j{i}", compute, comm)
            for i, (compute, comm) in enumerate(params)
        ]
        problem = ClusterCompatibilityProblem.from_assignments(
            circles, {c.job_id: ["L"] for c in circles}
        )
        cluster_result = problem.solve()
        plain = solve(circles, seed=0)
        if plain.found:
            assert cluster_result.compatible
        if plain.complete and not plain.found:
            assert not cluster_result.compatible


class TestFractionalConsistency:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(circle_params(max_period=50), min_size=2, max_size=3))
    def test_full_demand_matches_integer_coverage(self, params):
        circles = [
            JobCircle.from_phases(f"j{i}", compute, comm, demand=1.0)
            for i, (compute, comm) in enumerate(params)
        ]
        unified = UnifiedCircle(circles)
        assert unified.fractional_overlap_ticks() == (
            unified.overlap_ticks()
        )

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(circle_params(max_period=50), min_size=2, max_size=3),
        st.floats(0.1, 0.5),
    )
    def test_small_demands_never_overlap_capacity_one(self, params, demand):
        # If demands sum below capacity, no point can exceed it.
        if demand * len(params) > 1.0:
            return
        circles = [
            JobCircle.from_phases(f"j{i}", compute, comm, demand=demand)
            for i, (compute, comm) in enumerate(params)
        ]
        unified = UnifiedCircle(circles)
        assert unified.fractional_overlap_ticks() == 0


class TestProfilerRoundtrip:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(20, 400),   # compute ms
        st.integers(10, 300),   # comm ms
        st.integers(4, 8),      # iterations
    )
    def test_profile_recovers_spec(self, compute_ms, comm_ms, n):
        cap = gbps(42)
        spec = JobSpec(
            "j",
            compute_time=compute_ms * 1e-3,
            comm_bytes=comm_ms * 1e-3 * cap,
        )
        trace = demand_trace(spec, cap, n_iterations=n)
        horizon = n * spec.solo_iteration_time(cap)
        profile = profile_trace(trace, 0.0, horizon)
        assert abs(profile.compute_time - spec.compute_time) < 1e-9
        assert abs(
            profile.comm_time - spec.solo_comm_time(cap)
        ) < 1e-9
        assert abs(profile.bandwidth_demand - cap) < 1.0


class TestGateProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(1, 80),    # window start
        st.integers(1, 20),    # window length
        st.floats(0.0, 0.5),   # query time
    )
    def test_gate_admits_inside_its_windows_only(self, start, length, now):
        period = 100
        window = CommWindow(
            job_id="j", start=start, length=length, period=period
        )
        gate = PeriodicGate([window], ticks_per_second=1000)
        admitted = gate("j", now)
        assert admitted >= now - 1e-12
        # The admitted instant lies inside a window occurrence.
        phase = (admitted % (period / 1000)) * 1000
        assert start - 1e-6 <= phase <= start + length + 1e-6

    @settings(max_examples=50, deadline=None)
    @given(st.floats(0.0, 0.5))
    def test_gate_is_idempotent_at_admission(self, now):
        window = CommWindow(job_id="j", start=25, length=10, period=100)
        gate = PeriodicGate([window], ticks_per_second=1000)
        admitted = gate("j", now)
        assert gate("j", admitted) == admitted


class TestSchedulerEquivalences:
    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(
            st.integers(0, 5),
            st.floats(0.0, 2e9),
            min_size=1,
            max_size=5,
        )
    )
    def test_strict_priority_matches_fluid_allocator(self, demands):
        capacity = 1e9
        port = StrictPriorityScheduler(capacity)
        port_rates = port.service_rates(demands)

        link = Link("a", "b", capacity, name="L")
        flows = [
            Flow(
                flow_id=f"f{priority}", src="a", dst="b", links=[link],
                priority=priority, rate_cap=demand if demand > 0 else 1e-9,
                job_id=f"f{priority}",
            )
            for priority, demand in demands.items()
        ]
        alloc = FluidAllocator().allocate(flows)
        for flow in flows:
            expected = port_rates[flow.priority]
            assert abs(alloc.rate_of(flow) - expected) <= max(
                1e-3, expected * 1e-9
            )


class TestIoProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.text(
            "abcdefghijklmnopqrstuvwxyz-_0123456789",
            min_size=1,
            max_size=20,
        ),
        st.floats(0.0, 10.0),
        st.floats(1.0, 1e10),
        st.floats(0.0, 0.5),
        st.integers(1, 64),
    )
    def test_job_spec_roundtrip(self, job_id, compute, comm, jitter, workers):
        spec = JobSpec(
            job_id=job_id,
            compute_time=compute,
            comm_bytes=comm,
            compute_jitter=jitter,
            n_workers=workers,
        )
        assert job_spec_from_dict(job_spec_to_dict(spec)) == spec
