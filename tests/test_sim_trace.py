"""TimeSeries and StepFunction tests, including exact integration."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.trace import StepFunction, TimeSeries


class TestTimeSeries:
    def test_record_and_read(self):
        ts = TimeSeries("x")
        ts.record(0.0, 1.0)
        ts.record(1.0, 2.0)
        assert list(ts) == [(0.0, 1.0), (1.0, 2.0)]
        assert len(ts) == 2

    def test_arrays(self):
        ts = TimeSeries()
        ts.record(0.5, 3.0)
        np.testing.assert_allclose(ts.times, [0.5])
        np.testing.assert_allclose(ts.values, [3.0])

    def test_equal_times_allowed(self):
        ts = TimeSeries()
        ts.record(1.0, 1.0)
        ts.record(1.0, 2.0)
        assert len(ts) == 2

    def test_out_of_order_rejected(self):
        ts = TimeSeries()
        ts.record(1.0, 1.0)
        with pytest.raises(SimulationError):
            ts.record(0.5, 2.0)


class TestStepFunction:
    def test_initial_value(self):
        step = StepFunction(initial=7.0)
        assert step.value_at(0.0) == 7.0
        assert step.value_at(100.0) == 7.0

    def test_right_continuity(self):
        step = StepFunction(0.0)
        step.set(1.0, 5.0)
        assert step.value_at(0.999) == 0.0
        assert step.value_at(1.0) == 5.0

    def test_overwrite_at_same_time(self):
        step = StepFunction(0.0)
        step.set(1.0, 5.0)
        step.set(1.0, 9.0)
        assert step.value_at(1.0) == 9.0
        assert len(step.breakpoints()) == 1

    def test_noop_transitions_skipped(self):
        step = StepFunction(0.0)
        step.set(1.0, 0.0)
        assert step.breakpoints() == []

    def test_out_of_order_rejected(self):
        step = StepFunction()
        step.set(2.0, 1.0)
        with pytest.raises(SimulationError):
            step.set(1.0, 2.0)

    def test_last_value(self):
        step = StepFunction(1.0)
        assert step.last_value() == 1.0
        step.set(1.0, 4.0)
        assert step.last_value() == 4.0

    def test_sample(self):
        step = StepFunction(0.0)
        step.set(1.0, 2.0)
        np.testing.assert_allclose(
            step.sample([0.0, 0.5, 1.0, 2.0]), [0, 0, 2, 2]
        )


class TestIntegration:
    def test_constant(self):
        step = StepFunction(3.0)
        assert step.integrate(0.0, 2.0) == pytest.approx(6.0)

    def test_single_step(self):
        step = StepFunction(0.0)
        step.set(1.0, 10.0)
        assert step.integrate(0.0, 2.0) == pytest.approx(10.0)

    def test_window_inside_segment(self):
        step = StepFunction(0.0)
        step.set(1.0, 10.0)
        step.set(3.0, 0.0)
        assert step.integrate(1.5, 2.5) == pytest.approx(10.0)

    def test_window_spanning_multiple_segments(self):
        step = StepFunction(1.0)
        step.set(1.0, 2.0)
        step.set(2.0, 3.0)
        # 1*1 + 2*1 + 3*1 over [0, 3]
        assert step.integrate(0.0, 3.0) == pytest.approx(6.0)

    def test_empty_window(self):
        step = StepFunction(5.0)
        assert step.integrate(1.0, 1.0) == 0.0

    def test_reversed_window_rejected(self):
        with pytest.raises(SimulationError):
            StepFunction().integrate(2.0, 1.0)

    def test_integral_equals_bytes_sent(self):
        # A rate trace integrated over a phase equals the bytes moved —
        # the invariant the phase simulator depends on.
        rate = StepFunction(0.0)
        rate.set(0.1, 100.0)
        rate.set(0.3, 50.0)
        rate.set(0.5, 0.0)
        bytes_moved = rate.integrate(0.0, 1.0)
        assert bytes_moved == pytest.approx(100 * 0.2 + 50 * 0.2)
