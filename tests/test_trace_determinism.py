"""Determinism of recorded telemetry traces.

The trace deliberately carries only simulation time — no wall-clock
stamps, no object reprs with memory addresses — so two runs of the same
seeded scenario must serialize to *byte-identical* JSONL. This is what
makes recorded runs diffable and the golden tests meaningful.
"""

import pytest

from repro.cc.fair import FairSharing
from repro.cc.weighted import StaticWeighted
from repro.experiments.common import run_jobs
from repro.io import trace_to_jsonl
from repro.telemetry import Telemetry
from repro.units import ms
from repro.workloads.job import JobSpec


def jittered_pair(capacity):
    """Two jobs with compute jitter, so the run exercises sim/rng.py."""
    mk = lambda name: JobSpec(
        job_id=name,
        compute_time=ms(100),
        comm_bytes=ms(100) * capacity,
        compute_jitter=0.05,
    )
    return [mk("J1"), mk("J2")]


def traced_run(specs, policy, seed):
    telemetry = Telemetry()
    run_jobs(
        specs, policy, n_iterations=5, seed=seed, telemetry=telemetry
    )
    return telemetry


class TestTraceDeterminism:
    def test_same_seed_byte_identical_trace(self, capacity):
        specs = jittered_pair(capacity)
        first = traced_run(specs, FairSharing(), seed=3)
        second = traced_run(specs, FairSharing(), seed=3)
        assert len(first.trace) > 0
        assert trace_to_jsonl(first.trace.records) == trace_to_jsonl(
            second.trace.records
        )

    def test_same_seed_identical_snapshot(self, capacity):
        # Counters and histograms must agree too (spans are wall-clock
        # and so are excluded from this comparison).
        specs = jittered_pair(capacity)
        first = traced_run(specs, FairSharing(), seed=3)
        second = traced_run(specs, FairSharing(), seed=3)
        strip = lambda snap: {
            key: value for key, value in snap.items() if key != "spans"
        }
        assert strip(first.snapshot()) == strip(second.snapshot())

    def test_different_seed_different_trace(self, capacity):
        # Jitter > 0 means the seed must matter; identical traces here
        # would mean the RNG never reached the simulation.
        specs = jittered_pair(capacity)
        first = traced_run(specs, FairSharing(), seed=3)
        second = traced_run(specs, FairSharing(), seed=4)
        assert trace_to_jsonl(first.trace.records) != trace_to_jsonl(
            second.trace.records
        )

    def test_policy_changes_trace(self, capacity):
        specs = jittered_pair(capacity)
        fair = traced_run(specs, FairSharing(), seed=3)
        unfair = traced_run(
            specs,
            StaticWeighted.from_aggressiveness_order(["J1", "J2"]),
            seed=3,
        )
        assert trace_to_jsonl(fair.trace.records) != trace_to_jsonl(
            unfair.trace.records
        )

    def test_trace_carries_no_wall_clock_fields(self, capacity):
        specs = jittered_pair(capacity)
        telemetry = traced_run(specs, FairSharing(), seed=3)
        for record in telemetry.trace.records:
            assert set(record.fields).isdisjoint(
                {"wall", "walltime", "timestamp", "perf_counter"}
            )
