"""Golden regression tests for the headline experiments.

Small-configuration runs of the Figure 1 and Table 1 pipelines pinned to
the numbers they produced when this file was written. The simulators are
seeded and their traces deterministic (see test_trace_determinism.py),
so any drift here means an intentional model change — update the goldens
alongside the change — or an accidental regression.

Tolerances are tight (rel=1e-9) because the pipeline is pure seeded
float arithmetic, not measurement.
"""

import pytest

from repro.experiments import figure1, table1
from repro.workloads.profiles import table1_groups

REL = 1e-9

#: cdf_experiment(n_iterations=40, skip=5, seed=0) median speedups.
GOLDEN_CDF_SPEEDUP = {"J1": 1.3817034685075564, "J2": 1.2874469008103344}

#: bandwidth_experiment() steady shares, Gbps (defaults, seed=7).
GOLDEN_FAIR_GBPS = {"J1": 24.558236, "J2": 25.157187}
GOLDEN_UNFAIR_GBPS = {"J1": 27.353435, "J2": 22.396467}

#: run_group(groups[i], n_iterations=20, skip=5) mean iteration times.
GOLDEN_TABLE1 = {
    "group1": {
        "compatible": False,
        "fair_ms": {"bert-g1": 181.9999999999998,
                    "vgg19-g1": 274.9999999999998},
        "unfair_ms": {"bert-g1": 175.16666666666652,
                      "vgg19-g1": 283.3333333333332},
    },
    "group2": {
        "compatible": True,
        "fair_ms": {"dlrm-a-g2": 1301.0000000000011,
                    "dlrm-b-g2": 1301.0000000000011},
        "unfair_ms": {"dlrm-a-g2": 1001.6249809265144,
                      "dlrm-b-g2": 1002.249961853028},
    },
}


class TestFigure1Golden:
    def test_cdf_median_speedups(self):
        cdf = figure1.cdf_experiment(n_iterations=40, skip=5, seed=0)
        for job, golden in GOLDEN_CDF_SPEEDUP.items():
            assert cdf.median_speedup(job) == pytest.approx(
                golden, rel=REL
            ), job

    def test_unfairness_speeds_up_both_jobs(self):
        # The paper's Figure 1d claim, independent of exact goldens.
        cdf = figure1.cdf_experiment(n_iterations=40, skip=5, seed=0)
        for job in cdf.run.job_ids:
            assert cdf.median_speedup(job) > 1.1

    def test_bandwidth_shares(self):
        bandwidth = figure1.bandwidth_experiment()
        for job, golden in GOLDEN_FAIR_GBPS.items():
            assert bandwidth.fair_gbps[job] == pytest.approx(
                golden, rel=1e-6
            ), job
        for job, golden in GOLDEN_UNFAIR_GBPS.items():
            assert bandwidth.unfair_gbps[job] == pytest.approx(
                golden, rel=1e-6
            ), job


class TestTable1Golden:
    @pytest.mark.parametrize("index,name", [(0, "group1"), (1, "group2")])
    def test_group_iteration_times(self, index, name):
        golden = GOLDEN_TABLE1[name]
        result = table1.run_group(
            table1_groups()[index], n_iterations=20, skip=5
        )
        assert result.compatibility.compatible == golden["compatible"]
        for row in result.rows:
            assert row.fair_ms == pytest.approx(
                golden["fair_ms"][row.job_id], rel=REL
            ), row.job_id
            assert row.unfair_ms == pytest.approx(
                golden["unfair_ms"][row.job_id], rel=REL
            ), row.job_id

    def test_compatible_group_gains_incompatible_does_not(self):
        # The Table 1 headline: unfairness helps the compatible group
        # and cannot help the incompatible one.
        compatible = GOLDEN_TABLE1["group2"]
        incompatible = GOLDEN_TABLE1["group1"]
        for job in compatible["fair_ms"]:
            assert (
                compatible["unfair_ms"][job] < compatible["fair_ms"][job]
            )
        assert any(
            incompatible["unfair_ms"][job] > incompatible["fair_ms"][job]
            for job in incompatible["fair_ms"]
        )
