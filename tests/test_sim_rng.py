"""Random-stream tests: determinism and independence."""

import numpy as np

from repro.sim.rng import RandomStreams


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RandomStreams(42).get("x").random(5)
        b = RandomStreams(42).get("x").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_names_differ(self):
        streams = RandomStreams(42)
        a = streams.get("x").random(5)
        b = streams.get("y").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).get("x").random(5)
        b = RandomStreams(2).get("x").random(5)
        assert not np.array_equal(a, b)

    def test_get_returns_same_generator(self):
        streams = RandomStreams(0)
        assert streams.get("x") is streams.get("x")

    def test_adding_stream_does_not_perturb_existing(self):
        lone = RandomStreams(7)
        seq_alone = lone.get("a").random(4)

        crowded = RandomStreams(7)
        crowded.get("z")  # extra stream created first
        seq_crowded = crowded.get("a").random(4)
        np.testing.assert_array_equal(seq_alone, seq_crowded)


class TestSpawn:
    def test_spawn_is_deterministic(self):
        a = RandomStreams(5).spawn("child").get("s").random(3)
        b = RandomStreams(5).spawn("child").get("s").random(3)
        np.testing.assert_array_equal(a, b)

    def test_spawn_differs_from_parent(self):
        parent = RandomStreams(5)
        child = parent.spawn("child")
        assert parent.seed != child.seed

    def test_seed_property(self):
        assert RandomStreams(9).seed == 9
