"""Integration tests: each experiment driver reproduces the paper's shape.

These run the real drivers at reduced scale and assert the qualitative
claims — who wins, signs of speedups, verdicts — not absolute numbers.
"""

import pytest

from repro.experiments import (
    ablations,
    fattree,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    mechanisms_exp,
    scheduler_exp,
    table1,
)


class TestFigure1:
    @pytest.fixture(scope="class")
    def bandwidth(self):
        return figure1.bandwidth_experiment(duration=0.15)

    def test_fair_split_roughly_even(self, bandwidth):
        j1, j2 = bandwidth.fair_gbps["J1"], bandwidth.fair_gbps["J2"]
        assert j1 / j2 == pytest.approx(1.0, abs=0.3)

    def test_unfair_favours_aggressive_timer(self, bandwidth):
        assert bandwidth.unfair_gbps["J1"] > bandwidth.unfair_gbps["J2"] * 1.15

    def test_table_renders(self, bandwidth):
        assert "Figure 1b/1c" in bandwidth.table()

    @pytest.fixture(scope="class")
    def cdf(self):
        return figure1.cdf_experiment(n_iterations=120, skip=20)

    def test_both_jobs_speed_up_at_median(self, cdf):
        for job in ("J1", "J2"):
            assert cdf.median_speedup(job) > 1.05

    def test_median_speedup_near_paper(self, cdf):
        # Paper: 1.23x. Accept the simulator's 1.1-1.5 band.
        for job in ("J1", "J2"):
            assert 1.05 < cdf.median_speedup(job) < 1.6

    def test_report_renders(self, cdf):
        assert "median speedup" in cdf.report()


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        return figure2.run(n_iterations=8)

    def test_fair_iterations_locked_at_320ms(self, result):
        times = result.fair.iteration_times("J1")
        assert times[0] == pytest.approx(0.32, rel=1e-6)
        assert times[-1] == pytest.approx(0.32, rel=1e-6)

    def test_anchor_order_matches_paper(self, result):
        anchors = result.anchors()
        assert anchors["J1 first iteration end"] < (
            anchors["J2 first iteration end"]
        )
        assert anchors["J1 second comm start"] < (
            anchors["J2 second comm start"]
        )

    def test_anchors_near_paper_values(self, result):
        for name, measured in result.anchors().items():
            assert measured == pytest.approx(
                figure2.PAPER_ANCHORS[name], abs=0.03
            ), name

    def test_overlap_shrinks_across_iterations(self, result):
        overlaps = result.overlap_per_iteration(max_iterations=4)
        assert overlaps[0] > 3 * overlaps[3]

    def test_report_renders(self, result):
        text = result.report()
        assert "Figure 2" in text and "anchors" in text


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self):
        return figure3.run(n_iterations=3)

    def test_circle_matches_paper(self, result):
        assert result.perimeter_ms == 255
        assert result.comm_arc_ms == (141, 255)

    def test_roll_consistency(self, result):
        assert result.roll_is_consistent()

    def test_report_renders(self, result):
        assert "255 ms" in result.report()


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return figure4.run()

    def test_collision_before_rotation(self, result):
        assert result.overlap_at_zero > 0

    def test_compatible_after_rotation(self, result):
        assert result.result.compatible
        assert result.result.overlap_ticks == 0

    def test_report_renders(self, result):
        assert "Figure 4" in result.report()


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return figure5.run()

    def test_unified_perimeter_is_lcm(self, result):
        assert result.unified.perimeter == 120

    def test_tiles(self, result):
        assert result.tiles == {"J1": 3, "J2": 2}

    def test_compatible_with_30_degree_rotation(self, result):
        assert result.result.compatible
        degrees = result.rotation_degrees_on_unified()
        # One of the jobs carries the paper's 30-degree turn (mod 30°
        # symmetry of the meshing pattern).
        assert any(
            angle % 360 in (30.0, 330.0) or angle == pytest.approx(30.0)
            for angle in degrees.values()
        )

    def test_report_renders(self, result):
        assert "LCM" in result.report()


class TestTable1:
    @pytest.fixture(scope="class")
    def results(self):
        return table1.run_all(n_iterations=40, skip=10)

    def test_verdicts_match_paper(self, results):
        for result in results:
            assert result.verdict_matches_paper, result.group.name

    def test_compatible_groups_all_speed_up(self, results):
        for result in results:
            if result.group.paper_compatible:
                assert result.all_members_sped_up, result.group.name

    def test_incompatible_groups_hurt_someone(self, results):
        for result in results:
            if not result.group.paper_compatible:
                assert any(
                    row.speedup < 1.0 for row in result.rows
                ), result.group.name

    def test_dlrm_matches_paper_closely(self, results):
        group2 = results[1]
        for row in group2.rows:
            assert row.fair_ms == pytest.approx(row.paper_fair_ms, rel=0.03)
            assert row.unfair_ms == pytest.approx(
                row.paper_unfair_ms, rel=0.05
            )

    def test_speedup_directions_match_paper(self, results):
        for result in results:
            for row in result.rows:
                paper_helped = row.paper_unfair_ms < row.paper_fair_ms
                measured_helped = row.speedup > 1.0
                # Allow near-ties (ResNet50's 1.01x) either way.
                if abs(row.paper_fair_ms - row.paper_unfair_ms) > 10:
                    assert measured_helped == paper_helped, row.job_id

    def test_report_renders(self, results):
        text = table1.report(results)
        assert "Table 1" in text
        assert "dlrm-a-g2" in text


class TestAblations:
    def test_adaptive_helps_compatible_not_incompatible(self):
        results = ablations.adaptive_cc_experiment(n_iterations=40, skip=15)
        by_name = {r.group_name: r for r in results}
        compatible = by_name["group2"]
        incompatible = by_name["group1"]
        # Compatible: clearly faster than fair for every member.
        assert all(s > 1.15 for s in compatible.speedups.values())
        # Incompatible: no member hurt materially vs fair sharing.
        assert incompatible.worst_regression > 0.97

    def test_adaptive_reaches_solo_for_compatible(self):
        results = ablations.adaptive_cc_experiment(n_iterations=40, skip=15)
        compatible = results[0]
        for job, adaptive_ms in compatible.adaptive_ms.items():
            assert adaptive_ms == pytest.approx(
                compatible.solo_ms[job], rel=0.03
            )

    def test_sector_sensitivity_monotone_threshold(self):
        points = ablations.sector_sensitivity(steps=(4, 12, 36))
        assert not points[0].found      # too coarse
        assert points[-1].found         # fine enough

    def test_solver_comparison_agrees_on_ground_truth(self):
        runs = ablations.solver_comparison()
        for run in runs:
            if run.instance == "overloaded (infeasible)":
                assert not run.found, run.solver
            if run.instance == "fig5 (feasible)" and run.solver in (
                "backtracking",
            ):
                assert run.found


class TestMechanisms:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return mechanisms_exp.run(n_iterations=40, skip=15)

    def test_all_five_treatments_present(self, outcomes):
        names = {o.mechanism for o in outcomes}
        assert names == {
            "fair", "weighted 2:1", "priorities", "adaptive",
            "flow scheduling",
        }

    def test_fair_is_worst(self, outcomes):
        by_name = {o.mechanism: o for o in outcomes}
        fair = by_name["fair"].mean_slowdown
        for name, outcome in by_name.items():
            if name != "fair":
                assert outcome.mean_slowdown <= fair + 1e-6, name

    def test_mechanisms_reach_solo_speed(self, outcomes):
        for outcome in outcomes:
            if outcome.mechanism == "fair":
                continue
            assert outcome.mean_slowdown == pytest.approx(1.0, abs=0.02), (
                outcome.mechanism
            )

    def test_report_renders(self, outcomes):
        assert "mechanism" in mechanisms_exp.report(outcomes)


class TestSchedulerExperiment:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return scheduler_exp.run_policies(n_iterations=40)

    def test_compat_aware_wins(self, outcomes):
        by_name = {o.policy_name: o for o in outcomes}
        compat = by_name["compatibility-aware"]
        for name, outcome in by_name.items():
            assert compat.mean_slowdown <= outcome.mean_slowdown + 1e-9

    def test_compat_aware_no_mixed_links(self, outcomes):
        by_name = {o.policy_name: o for o in outcomes}
        assert by_name["compatibility-aware"].mixed_links == 0

    def test_compat_aware_at_solo_speed(self, outcomes):
        by_name = {o.policy_name: o for o in outcomes}
        assert by_name["compatibility-aware"].mean_slowdown == (
            pytest.approx(1.0, abs=0.02)
        )

    def test_consolidated_pays_for_mixing(self, outcomes):
        by_name = {o.policy_name: o for o in outcomes}
        assert by_name["consolidated"].mean_slowdown > 1.02

    def test_report_renders(self, outcomes):
        assert "placement" in scheduler_exp.report(outcomes)


class TestFatTreeExperiment:
    """The multi-link fabric study: placement + rotation on fat_tree(4)."""

    @pytest.fixture(scope="class")
    def placement(self):
        return fattree.run_placement(n_iterations=30)

    @pytest.fixture(scope="class")
    def rotation(self):
        return fattree.run_rotation()

    def test_compat_aware_wins_on_fabric(self, placement):
        by_name = {o.policy_name: o for o in placement}
        compat = by_name["compatibility-aware"]
        for outcome in placement:
            assert compat.mean_slowdown <= outcome.mean_slowdown + 1e-9

    def test_compat_aware_passes_cluster_audit(self, placement):
        by_name = {o.policy_name: o for o in placement}
        compat = by_name["compatibility-aware"]
        assert compat.cluster_compatible
        assert compat.mixed_links == 0
        assert compat.mean_slowdown == pytest.approx(1.0, abs=0.02)

    def test_random_mixes_and_pays(self, placement):
        by_name = {o.policy_name: o for o in placement}
        random = by_name["random"]
        assert random.mixed_links > 0
        assert not random.cluster_compatible
        assert random.mean_slowdown > 1.1

    def test_staggered_rotation_beats_aligned(self, rotation):
        by_name = {o.scenario: o for o in rotation}
        assert (
            by_name["staggered"].mean_iteration_ms
            < by_name["aligned"].mean_iteration_ms
        )
        # A compatible rotation keeps the shared downlinks queue-free.
        assert by_name["staggered"].worst_queue_kib == pytest.approx(0.0)
        assert by_name["aligned"].worst_queue_kib > 100.0

    def test_report_renders(self, placement, rotation):
        rendered = fattree.report(placement, rotation)
        assert "fat-tree" in rendered
        assert "staggered" in rendered
