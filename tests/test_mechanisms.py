"""Mechanism tests: unfair CC bridge, priority assignment, flow gates."""

import pytest

from repro.cc.adaptive import AdaptiveUnfair
from repro.cc.weighted import StaticWeighted
from repro.core.circle import JobCircle
from repro.core.compatibility import CompatibilityChecker
from repro.errors import ConfigError
from repro.mechanisms.flow_scheduling import FlowSchedule, PeriodicGate
from repro.mechanisms.priorities import PriorityAssigner
from repro.mechanisms.unfair_cc import (
    adaptive_policy,
    aggressiveness_policy,
    timer_skew_policy,
)
from repro.core.rotation import CommWindow
from repro.units import gbps, ms
from repro.workloads.job import JobSpec


class TestUnfairCcBridge:
    def test_adaptive_policy_defaults(self):
        policy = adaptive_policy()
        assert isinstance(policy, AdaptiveUnfair)
        assert policy.gain == 1.0

    def test_aggressiveness_policy(self):
        policy = aggressiveness_policy(["a", "b", "c"])
        assert policy.weight_for_job("a") > policy.weight_for_job("b")

    def test_timer_skew_policy_orders_weights(self):
        policy = timer_skew_policy(
            {"fast": 100e-6, "slow": 125e-6},
            calibration_duration=0.08,
            seed=1,
        )
        assert isinstance(policy, StaticWeighted)
        assert policy.weight_for_job("fast") > policy.weight_for_job("slow")

    def test_timer_skew_single_timer_is_fair(self):
        policy = timer_skew_policy({"a": 125e-6, "b": 125e-6})
        assert policy.weight_for_job("a") == policy.weight_for_job("b")

    def test_timer_skew_empty_rejected(self):
        with pytest.raises(ConfigError):
            timer_skew_policy({})


class TestPriorityAssigner:
    def test_unique_descending(self):
        assignment = PriorityAssigner().assign(["a", "b", "c"])
        ps = [assignment.priorities[j] for j in ("a", "b", "c")]
        assert ps == sorted(ps, reverse=True)
        assert len(set(ps)) == 3
        assert assignment.overflowed == []

    def test_queue_budget_overflow(self):
        assigner = PriorityAssigner(n_queues=3)
        jobs = [f"j{i}" for i in range(5)]
        assignment = assigner.assign(jobs)
        assert assignment.overflowed == ["j2", "j3", "j4"]
        # Overflowed jobs share the lowest class.
        assert all(
            assignment.priorities[j] == 0 for j in assignment.overflowed
        )

    def test_within_budget_no_overflow(self):
        assignment = PriorityAssigner(n_queues=8).assign(["a", "b"])
        assert assignment.overflowed == []

    def test_policy_export(self):
        assignment = PriorityAssigner().assign(["a", "b"])
        policy = assignment.policy()
        assert policy.priority_for_job("a") > policy.priority_for_job("b")

    def test_duplicates_rejected(self):
        with pytest.raises(ConfigError):
            PriorityAssigner().assign(["a", "a"])

    def test_bad_budget_rejected(self):
        with pytest.raises(ConfigError):
            PriorityAssigner(n_queues=0)


class TestPeriodicGate:
    def _window(self, start, length, period=100):
        return CommWindow(job_id="j", start=start, length=length,
                          period=period)

    def test_inside_window_passes(self):
        gate = PeriodicGate([self._window(20, 30)], ticks_per_second=1000)
        assert gate("j", 0.025) == pytest.approx(0.025)

    def test_before_window_waits(self):
        gate = PeriodicGate([self._window(20, 30)], ticks_per_second=1000)
        assert gate("j", 0.010) == pytest.approx(0.020)

    def test_after_window_waits_for_next_period(self):
        gate = PeriodicGate([self._window(20, 30)], ticks_per_second=1000)
        assert gate("j", 0.060) == pytest.approx(0.120)

    def test_multiple_windows_pick_earliest(self):
        gate = PeriodicGate(
            [self._window(20, 10), self._window(70, 10)],
            ticks_per_second=1000,
        )
        assert gate("j", 0.040) == pytest.approx(0.070)

    def test_periodicity(self):
        gate = PeriodicGate([self._window(20, 30)], ticks_per_second=1000)
        assert gate("j", 0.310) == pytest.approx(0.320)

    def test_slack_narrows_admission(self):
        gate = PeriodicGate(
            [self._window(20, 30)], ticks_per_second=1000, slack=0.1
        )
        # Only the first 3 ticks of the window admit a start.
        assert gate("j", 0.0215) == pytest.approx(0.0215)
        assert gate("j", 0.030) == pytest.approx(0.120)

    def test_validation(self):
        with pytest.raises(ConfigError):
            PeriodicGate([], ticks_per_second=1000)
        with pytest.raises(ConfigError):
            PeriodicGate([self._window(0, 10)], ticks_per_second=0)
        with pytest.raises(ConfigError):
            PeriodicGate(
                [self._window(0, 10)], ticks_per_second=1000, slack=0.0
            )
        with pytest.raises(ConfigError):
            PeriodicGate(
                [self._window(0, 10, period=100),
                 self._window(0, 10, period=200)],
                ticks_per_second=1000,
            )


class TestFlowSchedule:
    def _compatible_setup(self):
        checker = CompatibilityChecker(capacity=gbps(42))
        specs = [
            JobSpec("a", ms(210), ms(90) * gbps(42)),
            JobSpec("b", ms(210), ms(90) * gbps(42)),
        ]
        circles = checker.circles(specs)
        result = checker.check(specs)
        return checker, circles, result

    def test_from_compatibility(self):
        checker, circles, result = self._compatible_setup()
        schedule = FlowSchedule.from_compatibility(
            circles, result, checker.ticks_per_second
        )
        assert set(schedule.windows) == {"a", "b"}

    def test_incompatible_rejected(self):
        checker = CompatibilityChecker(capacity=gbps(42))
        specs = [
            JobSpec("a", ms(100), ms(110) * gbps(42)),
            JobSpec("b", ms(100), ms(110) * gbps(42)),
        ]
        result = checker.check(specs)
        with pytest.raises(ConfigError):
            FlowSchedule.from_compatibility(
                checker.circles(specs), result, checker.ticks_per_second
            )

    def test_gates_for_all_jobs(self):
        checker, circles, result = self._compatible_setup()
        schedule = FlowSchedule.from_compatibility(
            circles, result, checker.ticks_per_second
        )
        gates = schedule.gates()
        assert set(gates) == {"a", "b"}

    def test_unknown_job_gate_rejected(self):
        checker, circles, result = self._compatible_setup()
        schedule = FlowSchedule.from_compatibility(
            circles, result, checker.ticks_per_second
        )
        with pytest.raises(ConfigError):
            schedule.gate_for("ghost")

    def test_gated_windows_never_admit_simultaneously(self):
        # At every instant at most one job's gate admits a fresh start —
        # the disjoint-window property that kills comm collisions.
        checker, circles, result = self._compatible_setup()
        schedule = FlowSchedule.from_compatibility(
            circles, result, checker.ticks_per_second
        )
        gates = schedule.gates()
        period = 0.3  # unified period of the 300 ms pair
        for step in range(300):
            t = step * period / 300
            admitted = [
                job for job, gate in gates.items()
                if gate(job, t) == t
            ]
            assert len(admitted) <= 1, t
