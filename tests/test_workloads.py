"""Workload tests: model zoo, allreduce accounting, job specs, profiles."""

import pytest

from repro.errors import WorkloadError
from repro.units import gbps, ms
from repro.workloads.allreduce import (
    AllreduceAlgorithm,
    allreduce_steps,
    bytes_per_worker,
)
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.job import JobSpec
from repro.workloads.models import MODEL_ZOO, model
from repro.workloads.profiles import (
    EFFECTIVE_BOTTLENECK,
    figure2_vgg19_pair,
    figure3_vgg16,
    paper_profile,
    table1_groups,
)
from repro.workloads.traces import demand_trace


class TestModelZoo:
    def test_known_models_present(self):
        for name in ("vgg16", "vgg19", "resnet50", "wideresnet",
                     "bert", "dlrm"):
            assert name in MODEL_ZOO

    def test_lookup_case_insensitive(self):
        assert model("VGG16") is MODEL_ZOO["vgg16"]

    def test_unknown_model_rejected(self):
        with pytest.raises(WorkloadError):
            model("alexnet")

    def test_gradient_bytes_fp32(self):
        # VGG16: 138.4M params x 4 bytes.
        assert model("vgg16").gradient_bytes == pytest.approx(553.6e6)

    def test_compute_scales_with_batch(self):
        spec = model("resnet50")
        assert spec.compute_time(200) == pytest.approx(
            2 * spec.compute_time(100)
        )

    def test_compute_rejects_bad_batch(self):
        with pytest.raises(WorkloadError):
            model("vgg16").compute_time(0)

    def test_vgg19_larger_than_vgg16(self):
        assert model("vgg19").params_millions > model("vgg16").params_millions


class TestAllreduce:
    def test_ring_formula(self):
        # 2(N-1)/N * S for N=4, S=100
        assert bytes_per_worker(100.0, 4) == pytest.approx(150.0)

    def test_ring_approaches_2s(self):
        assert bytes_per_worker(100.0, 1000) == pytest.approx(199.8)

    def test_single_worker_no_traffic(self):
        for algo in AllreduceAlgorithm:
            assert bytes_per_worker(100.0, 1, algo) == 0.0

    def test_tree(self):
        assert bytes_per_worker(
            100.0, 8, AllreduceAlgorithm.TREE
        ) == pytest.approx(200.0)

    def test_parameter_server(self):
        assert bytes_per_worker(
            100.0, 8, AllreduceAlgorithm.PARAMETER_SERVER
        ) == pytest.approx(200.0)

    def test_broadcast_scales_with_n(self):
        assert bytes_per_worker(
            100.0, 5, AllreduceAlgorithm.BROADCAST
        ) == pytest.approx(400.0)

    def test_hierarchical_less_than_broadcast(self):
        h = bytes_per_worker(100.0, 16, AllreduceAlgorithm.HIERARCHICAL)
        b = bytes_per_worker(100.0, 16, AllreduceAlgorithm.BROADCAST)
        assert h < b

    def test_steps_ring(self):
        assert allreduce_steps(8, AllreduceAlgorithm.RING) == 14

    def test_steps_tree_logarithmic(self):
        assert allreduce_steps(8, AllreduceAlgorithm.TREE) == 6

    def test_negative_bytes_rejected(self):
        with pytest.raises(WorkloadError):
            bytes_per_worker(-1.0, 4)

    def test_zero_workers_rejected(self):
        with pytest.raises(WorkloadError):
            bytes_per_worker(10.0, 0)


class TestJobSpec:
    def test_solo_times(self):
        spec = JobSpec("j", compute_time=0.1, comm_bytes=gbps(42) * 0.05)
        assert spec.solo_comm_time(gbps(42)) == pytest.approx(0.05)
        assert spec.solo_iteration_time(gbps(42)) == pytest.approx(0.15)
        assert spec.comm_fraction(gbps(42)) == pytest.approx(1 / 3)

    def test_from_model(self):
        spec = JobSpec.from_model("j", "resnet50", batch_size=256)
        assert spec.model_name == "resnet50"
        assert spec.comm_bytes > 0
        assert spec.compute_time > 0

    def test_with_id_and_jitter(self):
        spec = JobSpec("j", 0.1, 1e6)
        assert spec.with_id("k").job_id == "k"
        assert spec.with_jitter(0.05).compute_jitter == 0.05
        # original unchanged (frozen)
        assert spec.compute_jitter == 0.0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            JobSpec("", 0.1, 1e6)
        with pytest.raises(WorkloadError):
            JobSpec("j", -0.1, 1e6)
        with pytest.raises(WorkloadError):
            JobSpec("j", 0.1, 0.0)
        with pytest.raises(WorkloadError):
            JobSpec("j", 0.1, 1e6, compute_jitter=1.0)
        with pytest.raises(WorkloadError):
            JobSpec("j", 0.1, 1e6, n_workers=0)


class TestPaperProfiles:
    def test_figure3_vgg16_matches_paper(self):
        spec = figure3_vgg16()
        assert spec.compute_time == pytest.approx(ms(141))
        assert spec.solo_iteration_time(
            EFFECTIVE_BOTTLENECK
        ) == pytest.approx(ms(255))

    def test_figure2_pair_symmetric(self):
        j1, j2 = figure2_vgg19_pair()
        assert j1.compute_time == j2.compute_time
        assert j1.comm_bytes == j2.comm_bytes
        assert j1.job_id != j2.job_id

    def test_figure2_pair_anchors(self):
        j1, _ = figure2_vgg19_pair()
        assert j1.compute_time == pytest.approx(ms(100))
        assert j1.solo_comm_time(EFFECTIVE_BOTTLENECK) == pytest.approx(
            ms(110)
        )

    def test_table1_has_five_groups(self):
        groups = table1_groups()
        assert len(groups) == 5
        assert [g.paper_compatible for g in groups] == [
            False, True, False, True, True
        ]

    def test_dlrm_solo_matches_unfair_column(self):
        # The paper's point: unfair time of a compatible pair ~= solo.
        group2 = table1_groups()[1]
        for entry in group2.entries:
            solo = entry.spec.solo_iteration_time(EFFECTIVE_BOTTLENECK)
            assert solo * 1e3 == pytest.approx(
                entry.paper_unfair_ms, rel=0.02
            )

    def test_fair_column_consistent_with_full_overlap(self):
        # Fair sharing of two identical jobs: C + 2*Tc.
        group2 = table1_groups()[1]
        entry = group2.entries[0]
        spec = entry.spec
        expected = spec.compute_time + 2 * spec.solo_comm_time(
            EFFECTIVE_BOTTLENECK
        )
        assert expected * 1e3 == pytest.approx(entry.paper_fair_ms, rel=0.01)

    def test_paper_profile_lookup(self):
        assert paper_profile("dlrm-a-g2").model_name == "dlrm"
        assert paper_profile("vgg16-fig3").job_id == "vgg16-fig3"
        assert paper_profile("vgg19-fig2").job_id == "J1"

    def test_unknown_profile_rejected(self):
        with pytest.raises(WorkloadError):
            paper_profile("gpt4")

    def test_jitter_passthrough(self):
        j1, _ = figure2_vgg19_pair(jitter=0.03)
        assert j1.compute_jitter == 0.03


class TestGenerator:
    def test_seeded_determinism(self):
        a = WorkloadGenerator(seed=5).jobs(4)
        b = WorkloadGenerator(seed=5).jobs(4)
        assert [j.comm_bytes for j in a] == [j.comm_bytes for j in b]

    def test_jobs_within_configured_ranges(self):
        gen = WorkloadGenerator(
            seed=1,
            iteration_range_ms=(100, 500),
            comm_fraction_range=(0.1, 0.4),
        )
        for spec in gen.jobs(20):
            iteration = spec.solo_iteration_time(gbps(42))
            assert ms(95) <= iteration <= ms(510)
            assert 0.08 <= spec.comm_fraction(gbps(42)) <= 0.42

    def test_unique_ids(self):
        ids = [j.job_id for j in WorkloadGenerator().jobs(10)]
        assert len(set(ids)) == 10

    def test_arrival_times_increasing(self):
        times = WorkloadGenerator(seed=2).arrival_times(10, 30.0)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_bad_config_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadGenerator(iteration_range_ms=(500, 100))
        with pytest.raises(WorkloadError):
            WorkloadGenerator(comm_fraction_range=(0.5, 0.2))
        with pytest.raises(WorkloadError):
            WorkloadGenerator().jobs(-1)


class TestDemandTrace:
    def test_on_off_pattern(self):
        spec = JobSpec("j", compute_time=0.1, comm_bytes=gbps(10) * 0.05)
        trace = demand_trace(spec, gbps(10), n_iterations=2)
        assert trace.value_at(0.05) == 0.0  # computing
        assert trace.value_at(0.12) == pytest.approx(gbps(10))  # comm
        assert trace.value_at(0.16) == 0.0  # next compute
        assert trace.value_at(0.27) == pytest.approx(gbps(10))

    def test_total_bytes_match(self):
        spec = JobSpec("j", compute_time=0.1, comm_bytes=5e8)
        trace = demand_trace(spec, gbps(42), n_iterations=3)
        total = trace.integrate(0.0, 3 * spec.solo_iteration_time(gbps(42)))
        assert total == pytest.approx(3 * spec.comm_bytes, rel=1e-9)

    def test_bad_args_rejected(self):
        spec = JobSpec("j", 0.1, 1e6)
        with pytest.raises(WorkloadError):
            demand_trace(spec, gbps(10), 0)
        with pytest.raises(WorkloadError):
            demand_trace(spec, 0.0, 1)
