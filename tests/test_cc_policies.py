"""Share-policy tests: fair, weighted, adaptive, priority, factory."""

import pytest

from repro.cc.adaptive import AdaptiveUnfair
from repro.cc.factory import make_policy
from repro.cc.fair import FairSharing
from repro.cc.priority import PrioritySharing
from repro.cc.weighted import StaticWeighted
from repro.errors import ConfigError
from repro.net.flows import Flow


def _flow(job_id, progress=0.0):
    return Flow(
        flow_id=f"flow:{job_id}", src="a", dst="b",
        job_id=job_id, progress=progress,
    )


class TestFair:
    def test_all_weights_one(self):
        policy = FairSharing()
        assert policy.weight_of(_flow("x")) == 1.0
        assert policy.weight_of(_flow("y")) == 1.0

    def test_default_priority_zero(self):
        assert FairSharing().priority_of(_flow("x")) == 0

    def test_no_tick_needed(self):
        assert FairSharing().reallocation_interval is None


class TestStaticWeighted:
    def test_explicit_weights(self):
        policy = StaticWeighted({"a": 3.0, "b": 1.5})
        assert policy.weight_of(_flow("a")) == 3.0
        assert policy.weight_of(_flow("b")) == 1.5

    def test_default_weight_for_unknown_job(self):
        policy = StaticWeighted({"a": 3.0}, default=2.0)
        assert policy.weight_of(_flow("stranger")) == 2.0

    def test_aggressiveness_order_ratios(self):
        policy = StaticWeighted.from_aggressiveness_order(
            ["first", "second", "third"], ratio=2.0
        )
        assert policy.weight_for_job("first") == 4.0
        assert policy.weight_for_job("second") == 2.0
        assert policy.weight_for_job("third") == 1.0

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ConfigError):
            StaticWeighted({"a": 0.0})

    def test_ratio_must_exceed_one(self):
        with pytest.raises(ConfigError):
            StaticWeighted.from_aggressiveness_order(["a", "b"], ratio=1.0)


class TestAdaptive:
    def test_paper_formula_at_zero_progress(self):
        # Data_sent = 0: no boost.
        assert AdaptiveUnfair().weight_of(_flow("x", 0.0)) == 1.0

    def test_paper_formula_at_full_progress(self):
        # Data_sent = Data_comm_phase: doubled additive increase.
        assert AdaptiveUnfair().weight_of(_flow("x", 1.0)) == 2.0

    def test_monotone_in_progress(self):
        policy = AdaptiveUnfair()
        weights = [
            policy.weight_of(_flow("x", p))
            for p in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert weights == sorted(weights)

    def test_exponent_sharpens(self):
        soft = AdaptiveUnfair(exponent=1.0).weight_of(_flow("x", 1.0))
        sharp = AdaptiveUnfair(exponent=3.0).weight_of(_flow("x", 1.0))
        assert sharp > soft

    def test_requires_tick(self):
        assert AdaptiveUnfair().reallocation_interval is not None

    def test_bad_params_rejected(self):
        with pytest.raises(ConfigError):
            AdaptiveUnfair(gain=-1.0)
        with pytest.raises(ConfigError):
            AdaptiveUnfair(exponent=0.0)
        with pytest.raises(ConfigError):
            AdaptiveUnfair(reallocation_interval=0.0)


class TestPrioritySharing:
    def test_unique_for_gives_distinct_descending(self):
        policy = PrioritySharing.unique_for(["a", "b", "c"])
        ps = [policy.priority_for_job(j) for j in ("a", "b", "c")]
        assert len(set(ps)) == 3
        assert ps == sorted(ps, reverse=True)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigError):
            PrioritySharing.unique_for(["a", "a"])

    def test_unknown_job_gets_default(self):
        policy = PrioritySharing({"a": 5}, default=1)
        assert policy.priority_of(_flow("stranger")) == 1

    def test_weight_within_class_is_fair(self):
        policy = PrioritySharing({"a": 5})
        assert policy.weight_of(_flow("a")) == 1.0


class TestFactory:
    def test_fair(self):
        assert isinstance(make_policy("fair"), FairSharing)

    def test_weighted_with_order(self):
        policy = make_policy("weighted", order=["a", "b"])
        assert isinstance(policy, StaticWeighted)
        assert policy.weight_for_job("a") == 2.0

    def test_weighted_with_order_and_ratio(self):
        policy = make_policy("weighted", order=["a", "b"], ratio=3.0)
        assert policy.weight_for_job("a") == 3.0

    def test_weighted_with_weights(self):
        policy = make_policy("weighted", weights={"a": 5.0})
        assert policy.weight_for_job("a") == 5.0

    def test_weighted_order_and_weights_conflict(self):
        with pytest.raises(ConfigError):
            make_policy("weighted", order=["a"], weights={"a": 1.0})

    def test_adaptive(self):
        assert isinstance(make_policy("adaptive"), AdaptiveUnfair)

    def test_priority_with_order(self):
        policy = make_policy("priority", order=["a", "b"])
        assert isinstance(policy, PrioritySharing)

    def test_case_insensitive(self):
        assert isinstance(make_policy("  FAIR "), FairSharing)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_policy("tcp-reno")
