"""Metamorphic tests: transformations that must not change outcomes.

Each test applies a symmetry of the model — time scaling, joint
capacity/byte scaling, uniform weight scaling, job relabelling — and
asserts the simulator and solvers respect it. These catch unit mix-ups
and hidden absolute constants that example-based tests miss.
"""

import numpy as np
import pytest

from repro.cc.fair import FairSharing
from repro.cc.weighted import StaticWeighted
from repro.core.circle import JobCircle
from repro.core.optimize import solve
from repro.net.phasesim import PhaseLevelSimulator
from repro.net.topology import Topology
from repro.units import gbps, ms
from repro.workloads.job import JobSpec

CAP = gbps(42)


def _run(specs, policy, capacity, n_iterations=12, seed=0):
    topo = Topology.dumbbell(
        hosts_per_side=len(specs),
        host_capacity=capacity,
        bottleneck_capacity=capacity,
    )
    sim = PhaseLevelSimulator(topo, policy, seed=seed)
    for i, spec in enumerate(specs):
        sim.add_job(spec, f"ha{i}", f"hb{i}", n_iterations=n_iterations)
    return sim.run()


def _pair(compute_ms=100, comm_ms=110, capacity=CAP):
    return [
        JobSpec("J1", ms(compute_ms), ms(comm_ms) * capacity),
        JobSpec("J2", ms(compute_ms), ms(comm_ms) * capacity),
    ]


class TestTimeScaling:
    def test_scaling_all_durations_scales_results(self):
        base = _run(_pair(100, 110), FairSharing(), CAP)
        scaled = _run(_pair(200, 220), FairSharing(), CAP)
        np.testing.assert_allclose(
            scaled.iteration_times("J1"),
            2 * base.iteration_times("J1"),
            rtol=1e-9,
        )

    def test_scaling_under_unfairness_too(self):
        policy = lambda: StaticWeighted.from_aggressiveness_order(
            ["J1", "J2"]
        )
        base = _run(_pair(100, 110), policy(), CAP)
        scaled = _run(_pair(300, 330), policy(), CAP)
        np.testing.assert_allclose(
            scaled.iteration_times("J2"),
            3 * base.iteration_times("J2"),
            rtol=1e-9,
        )


class TestCapacityScaling:
    def test_joint_capacity_and_bytes_scaling_is_identity(self):
        base = _run(_pair(100, 110, CAP), FairSharing(), CAP)
        double = _run(
            _pair(100, 110, 2 * CAP), FairSharing(), 2 * CAP
        )
        np.testing.assert_allclose(
            base.iteration_times("J1"),
            double.iteration_times("J1"),
            rtol=1e-9,
        )

    def test_doubling_capacity_halves_comm_time_only(self):
        spec = [JobSpec("J", ms(100), ms(100) * CAP)]
        base = _run(spec, FairSharing(), CAP)
        fast = _run(spec, FairSharing(), 2 * CAP)
        assert base.iteration_times("J")[0] == pytest.approx(ms(200))
        assert fast.iteration_times("J")[0] == pytest.approx(ms(150))


class TestWeightScaling:
    def test_uniform_weight_scale_changes_nothing(self):
        a = _run(
            _pair(),
            StaticWeighted({"J1": 2.0, "J2": 1.0}),
            CAP,
        )
        b = _run(
            _pair(),
            StaticWeighted({"J1": 20.0, "J2": 10.0}),
            CAP,
        )
        np.testing.assert_allclose(
            a.iteration_times("J1"), b.iteration_times("J1"), rtol=1e-9
        )
        np.testing.assert_allclose(
            a.iteration_times("J2"), b.iteration_times("J2"), rtol=1e-9
        )


class TestRelabelling:
    def test_job_names_do_not_matter_to_geometry(self):
        a = [
            JobCircle.from_phases("alpha", 60, 40),
            JobCircle.from_phases("beta", 55, 45),
        ]
        b = [
            JobCircle.from_phases("x1", 60, 40),
            JobCircle.from_phases("x2", 55, 45),
        ]
        assert solve(a).found == solve(b).found

    def test_circle_order_does_not_change_verdict(self):
        circles = [
            JobCircle.from_phases("a", 280, 50),
            JobCircle.from_phases("b", 280, 50),
            JobCircle.from_phases("c", 157, 8),
        ]
        forward = solve(circles)
        backward = solve(list(reversed(circles)))
        assert forward.found == backward.found

    def test_geometry_scale_invariance(self):
        # Scaling every tick count by k preserves compatibility.
        base = [
            JobCircle.from_phases("a", 30, 10),
            JobCircle.from_phases("b", 50, 10),
        ]
        scaled = [
            JobCircle.from_phases("a", 300, 100),
            JobCircle.from_phases("b", 500, 100),
        ]
        assert solve(base).found == solve(scaled).found


class TestIsolationInvariance:
    def test_disjoint_jobs_do_not_interact(self):
        # Two jobs on separate dumbbells vs together on one wide fabric
        # with disjoint paths: identical results.
        solo = _run(
            [JobSpec("J1", ms(100), ms(110) * CAP)], FairSharing(), CAP
        )
        topo = Topology.leaf_spine(
            n_racks=4, hosts_per_rack=1, n_spines=2,
            host_capacity=CAP, uplink_capacity=CAP,
        )
        sim = PhaseLevelSimulator(topo, FairSharing())
        sim.add_job(
            JobSpec("J1", ms(100), ms(110) * CAP), "h0_0", "h1_0",
            n_iterations=12,
        )
        sim.add_job(
            JobSpec("J2", ms(100), ms(110) * CAP), "h2_0", "h3_0",
            n_iterations=12,
        )
        together = sim.run()
        # Paths may share a spine under deterministic shortest-path
        # routing; assert only when they are truly disjoint.
        j1_links = {l.name for l in together.jobs["J1"].flow.links}
        j2_links = {l.name for l in together.jobs["J2"].flow.links}
        if j1_links.isdisjoint(j2_links):
            np.testing.assert_allclose(
                together.iteration_times("J1"),
                solo.iteration_times("J1"),
                rtol=1e-9,
            )

    def test_seed_changes_nothing_without_jitter(self):
        a = _run(_pair(), FairSharing(), CAP, seed=1)
        b = _run(_pair(), FairSharing(), CAP, seed=99)
        np.testing.assert_allclose(
            a.iteration_times("J1"), b.iteration_times("J1")
        )


class TestZeroEventScheduleIsIdentity:
    """An empty injection schedule is the documented no-op.

    Attaching ``InjectionSchedule()`` to a spec must be bit-identical to
    attaching no schedule at all, on *every* registered backend: the
    empty schedule collapses to the single NORMAL window and takes the
    exact same code path as a clean run. The specs below must cover the
    whole backend registry, so a newly registered backend fails this
    test until it gets a metamorphic cell here.
    """

    @staticmethod
    def _specs():
        from repro.runner import RunSpec, ScenarioSpec, SenderSpec
        from repro.units import gbps

        placements = (
            (
                JobSpec("J1", ms(10), ms(5) * CAP, n_workers=2),
                ("h0_0", "h1_0"),
            ),
        )
        return {
            "phase": RunSpec(
                backend="phase",
                seed=0,
                jobs=tuple(_pair()),
                policy=FairSharing(),
                n_iterations=6,
                capacity=CAP,
            ),
            "engine": RunSpec(
                backend="engine",
                seed=0,
                jobs=tuple(_pair()),
                policy=FairSharing(),
                n_iterations=6,
                capacity=CAP,
            ),
            "fluid": RunSpec(
                backend="fluid",
                seed=7,
                capacity=gbps(50),
                duration=0.02,
                options=(("dt", 20e-6),),
                scenarios=(
                    ScenarioSpec(
                        "only",
                        (
                            SenderSpec(
                                "J1",
                                125e-6,
                                compute_time=0.0015,
                                comm_bytes=gbps(50) * 0.001,
                            ),
                        ),
                    ),
                ),
            ),
            "cluster": RunSpec(
                backend="cluster",
                seed=0,
                policy=FairSharing(),
                topology=Topology.leaf_spine(
                    n_racks=2, hosts_per_rack=1, n_spines=1,
                    host_capacity=CAP, uplink_capacity=CAP,
                ),
                n_iterations=5,
                capacity=CAP,
                options=(
                    ("placements", placements),
                    ("warmup_iterations", 1),
                ),
            ),
            "service": RunSpec(
                backend="service",
                seed=3,
                capacity=CAP,
                options=(
                    ("arrival_process", "poisson"),
                    ("n_arrivals", 8),
                    ("mean_interarrival_s", 30.0),
                    ("mean_lifetime_s", 120.0),
                    ("placement", "compatibility-aware"),
                    ("n_racks", 2),
                    ("hosts_per_rack", 2),
                    ("gpus_per_host", 4),
                ),
            ),
        }

    def test_every_builtin_backend_is_covered(self):
        # Experiment modules may register extra backends at import time
        # (e.g. sweep's point backend, a thin wrapper over a built-in),
        # so scope the coverage check to the built-in registry.
        from repro.runner import backends

        builtin = sorted(
            name
            for name in backends.backend_names()
            if type(backends.get_backend(name)).__module__
            == "repro.runner.backends"
        )
        assert sorted(self._specs()) == builtin

    @pytest.mark.parametrize(
        "name", ["cluster", "engine", "fluid", "phase", "service"]
    )
    def test_empty_schedule_bit_identical_to_none(self, name):
        import json

        from repro import io
        from repro.faults import InjectionSchedule
        from repro.runner import execute

        spec = self._specs()[name]
        clean = execute(spec)
        empty = execute(spec.replace(faults=InjectionSchedule()))
        fingerprint = lambda result: json.dumps(
            io.run_result_to_dict(result),
            sort_keys=True,
            separators=(",", ":"),
        )
        assert fingerprint(clean) == fingerprint(empty)
