"""Cross-engine bit-equivalence of the multi-link fabric tier.

The fat-tree generalization adds a whole new engine pair — the
per-link scalar reference (:func:`repro.cc.link_engine.run_scalar_fabric`)
and the vectorized :class:`repro.cc.link_engine.LinkSenderBank` — and
the single-link guarantee must carry over verbatim: same sampled rate
series, same per-link queue series, same timelines and the same number
of random draws, on clean runs and under fault schedules that now
target *different* links of the same fabric.
"""

import numpy as np
import pytest

from repro.cc.aimd import AimdFluidSimulator
from repro.cc.dcqcn import (
    AGGRESSIVE_TIMER,
    DEFAULT_TIMER,
    DcqcnFluidSimulator,
    DcqcnParams,
    OnOffDcqcnJob,
)
from repro.errors import ConfigError, TopologyError
from repro.faults import (
    InjectionSchedule,
    LatencySpike,
    LinkFailure,
    PfcStorm,
    RateChange,
    Straggler,
)
from repro.net.topology import Topology
from repro.units import gbps, kib, mbps

# Three jobs on a k=4 fat tree, all converging on pod 1's downlinks so
# the shared links genuinely queue: J1/J2 start in pod 0 (sharing that
# pod's uplink), J3 in pod 2, and all three ride core0 -> agg1_0 ->
# edge1_0 down to pod 1 hosts.
ROUTES = {
    "J1": (
        "h0_0_0->edge0_0", "up_0_0_0", "core_0_0_0",
        "core_1_0_0_rev", "up_1_0_0_rev", "edge1_0->h1_0_0",
    ),
    "J2": (
        "h0_0_1->edge0_0", "up_0_0_0", "core_0_0_0",
        "core_1_0_0_rev", "up_1_0_0_rev", "edge1_0->h1_0_1",
    ),
    "J3": (
        "h2_0_0->edge2_0", "up_2_0_0", "core_2_0_0",
        "core_1_0_0_rev", "up_1_0_0_rev", "edge1_0->h1_0_0",
    ),
}

#: Mid-run perturbations hitting *different* fabric links, with window
#: boundaries off the sample grid so span truncation is stressed.
SCHEDULES = {
    "clean": None,
    "rate-dip": InjectionSchedule(events=(
        RateChange("core_1_0_0_rev", 0.0052, 0.0095, 0.35),
        RateChange("up_0_0_0", 0.0214, 0.0289, 1.6),
    )),
    "link-failure": InjectionSchedule(events=(
        LinkFailure("up_2_0_0", 0.0111, 0.0183),
    )),
    "pfc-storm": InjectionSchedule(events=(
        PfcStorm("core_1_0_0_rev", 0.0077, 0.0121),
    )),
    "everything": InjectionSchedule(events=(
        RateChange("core_0_0_0", 0.004, 0.008, 0.5),
        PfcStorm("up_1_0_0_rev", 0.012, 0.015),
        LinkFailure("up_0_0_0", 0.02, 0.024),
        Straggler("J2", 0.0, 0.05, 1.3),
        LatencySpike("core_2_0_0", 0.02, 0.04, 0.0003),
    ), horizon=0.06),
}


def _series_equal(left, right):
    assert set(left.rate_series) == set(right.rate_series)
    for name, series in left.rate_series.items():
        other = right.rate_series[name]
        assert np.array_equal(series.times, other.times), name
        assert np.array_equal(series.values, other.values), name
    if hasattr(left, "queue_series"):
        assert np.array_equal(
            left.queue_series.times, right.queue_series.times
        )
        assert np.array_equal(
            left.queue_series.values, right.queue_series.values
        )
        assert set(left.link_queue_series) == set(right.link_queue_series)
        for name, series in left.link_queue_series.items():
            other = right.link_queue_series[name]
            assert np.array_equal(series.times, other.times), name
            assert np.array_equal(series.values, other.values), name


def _dcqcn(engine, faults, pfc=False):
    sim = DcqcnFluidSimulator(
        dt=10e-6,
        engine=engine,
        faults=faults,
        topology=Topology.fat_tree(4),
        pfc_pause_threshold=200 * kib(1) if pfc else None,
    )
    params = DcqcnParams(line_rate=gbps(50))
    jobs, rngs = [], []
    for index, (name, timer) in enumerate(zip(
        sorted(ROUTES), (AGGRESSIVE_TIMER, DEFAULT_TIMER, DEFAULT_TIMER)
    )):
        rng = np.random.default_rng(40 + index)
        job = OnOffDcqcnJob(
            name,
            params.with_timer(timer),
            rng,
            compute_time=0.0011,
            comm_bytes=0.0013 * gbps(50),
            start_offset=index * 0.0003,
        )
        sim.add_source(job, route=ROUTES[name])
        jobs.append(job)
        rngs.append(rng)
    return sim, jobs, rngs


def _aimd(engine, faults):
    sim = AimdFluidSimulator(
        buffer_bytes=kib(64), dt=1e-3, sample_interval=5e-3,
        engine=engine, faults=faults,
        topology=Topology.fat_tree(4, host_capacity=mbps(400)),
    )
    jobs = []
    for index, name in enumerate(sorted(ROUTES)):
        jobs.append(sim.add_job(
            name,
            compute_time=0.11,
            comm_bytes=0.13 * mbps(400),
            start_offset=index * 0.03,
            route=ROUTES[name],
        ))
    return sim, jobs


class TestDcqcnFabricEquivalence:
    @pytest.mark.parametrize("name", sorted(SCHEDULES))
    def test_bit_identical(self, name):
        faults = SCHEDULES[name]
        sim_s, jobs_s, rngs_s = _dcqcn("scalar", faults)
        sim_v, jobs_v, rngs_v = _dcqcn("vector", faults)
        result_s = sim_s.run(0.05)
        result_v = sim_v.run(0.05)
        assert set(result_s.link_queue_series)  # fabric series exist
        _series_equal(result_s, result_v)
        for job_s, job_v in zip(jobs_s, jobs_v):
            assert (
                repr(job_s.timeline.__dict__)
                == repr(job_v.timeline.__dict__)
            )
        # Same number of random draws: the generators must sit at the
        # same stream position after the run.
        for rng_s, rng_v in zip(rngs_s, rngs_v):
            assert (
                rng_s.bit_generator.state == rng_v.bit_generator.state
            )

    @pytest.mark.parametrize("name", ["clean", "pfc-storm"])
    def test_bit_identical_with_pfc(self, name):
        faults = SCHEDULES[name]
        sim_s, _, rngs_s = _dcqcn("scalar", faults, pfc=True)
        sim_v, _, rngs_v = _dcqcn("vector", faults, pfc=True)
        result_s = sim_s.run(0.05)
        result_v = sim_v.run(0.05)
        _series_equal(result_s, result_v)
        assert sim_s.pfc_pause_seconds == sim_v.pfc_pause_seconds
        for rng_s, rng_v in zip(rngs_s, rngs_v):
            assert (
                rng_s.bit_generator.state == rng_v.bit_generator.state
            )

    def test_storm_accrues_pause_time(self):
        sim_s, _, _ = _dcqcn("scalar", SCHEDULES["pfc-storm"])
        sim_v, _, _ = _dcqcn("vector", SCHEDULES["pfc-storm"])
        sim_s.run(0.05)
        sim_v.run(0.05)
        assert sim_s.pfc_pause_seconds > 0.0
        assert sim_s.pfc_pause_seconds == sim_v.pfc_pause_seconds

    def test_capacity_restored_after_run(self):
        for engine in ("scalar", "vector"):
            sim, _, _ = _dcqcn(engine, SCHEDULES["everything"])
            sim.run(0.05)
            for queue, base in zip(
                sim.fabric.queues, sim.fabric.base_caps
            ):
                assert queue.capacity == base

    def test_faulted_run_differs_from_clean(self):
        sim_clean, _, _ = _dcqcn("vector", None)
        sim_fault, _, _ = _dcqcn("vector", SCHEDULES["everything"])
        clean = sim_clean.run(0.05)
        faulted = sim_fault.run(0.05)
        assert not np.array_equal(
            clean.queue_series.values, faulted.queue_series.values
        )

    def test_shared_links_actually_congest(self):
        sim, _, _ = _dcqcn("vector", None)
        result = sim.run(0.05)
        # Three 50 Gbps flows converge on the pod-1 downlinks: the
        # shared hops must queue, private host uplinks must not.
        assert result.link_queue_series["core_1_0_0_rev"].values.max() > 0
        assert result.link_queue_series["h0_0_0->edge0_0"].values.max() == 0


class TestAimdFabricEquivalence:
    @pytest.mark.parametrize(
        "name", ["clean", "rate-dip", "link-failure", "pfc-storm"]
    )
    def test_bit_identical(self, name):
        faults = SCHEDULES[name]
        sim_s, jobs_s = _aimd("scalar", faults)
        sim_v, jobs_v = _aimd("vector", faults)
        result_s = sim_s.run(4.0)
        result_v = sim_v.run(4.0)
        _series_equal(result_s, result_v)
        for job_s, job_v in zip(jobs_s, jobs_v):
            assert (
                repr(job_s.timeline.__dict__)
                == repr(job_v.timeline.__dict__)
            )


class TestRouteValidation:
    def test_route_requires_topology(self):
        sim = DcqcnFluidSimulator()
        with pytest.raises(ConfigError, match="topology"):
            sim.add_sender(
                "s", DcqcnParams(), np.random.default_rng(0),
                route=("core_0_0_0",),
            )

    def test_topology_requires_route(self):
        sim = DcqcnFluidSimulator(topology=Topology.fat_tree(2))
        with pytest.raises(ConfigError, match="route"):
            sim.add_sender("s", DcqcnParams(), np.random.default_rng(0))

    def test_duplicate_link_in_route_rejected(self):
        sim = DcqcnFluidSimulator(topology=Topology.fat_tree(2))
        with pytest.raises(ConfigError, match="twice"):
            sim.add_sender(
                "s", DcqcnParams(), np.random.default_rng(0),
                route=("core_0_0_0", "core_0_0_0"),
            )

    def test_unknown_link_in_route_rejected(self):
        sim = DcqcnFluidSimulator(topology=Topology.fat_tree(2))
        with pytest.raises(TopologyError, match="no link named"):
            sim.add_sender(
                "s", DcqcnParams(), np.random.default_rng(0),
                route=("nope",),
            )

    def test_fault_on_unknown_link_rejected(self):
        faults = InjectionSchedule(events=(
            LinkFailure("no_such_link", 0.01, 0.02),
        ))
        sim, _, _ = _dcqcn("vector", faults)
        with pytest.raises(TopologyError, match="no_such_link"):
            sim.run(0.01)

    def test_fault_on_unrouted_link_is_harmless(self):
        # A failure elsewhere in the fabric, crossed by no route, must
        # not perturb the routed traffic.
        faults = InjectionSchedule(events=(
            LinkFailure("up_1_1_1", 0.01, 0.02),
        ))
        clean_sim, _, _ = _dcqcn("vector", None)
        fault_sim, _, _ = _dcqcn("vector", faults)
        clean = clean_sim.run(0.05)
        faulted = fault_sim.run(0.05)
        for name in clean.rate_series:
            assert np.array_equal(
                clean.rate_series[name].values,
                faulted.rate_series[name].values,
            )

    def test_aimd_route_validation_mirrors_dcqcn(self):
        sim = AimdFluidSimulator(topology=Topology.fat_tree(2))
        with pytest.raises(ConfigError, match="route"):
            sim.add_sender("s")
        with pytest.raises(ConfigError, match="topology"):
            AimdFluidSimulator().add_sender("s", route=("L1",))
