"""Grid-bank tests: batched multi-scenario execution is bit-identical.

The tentpole guarantee: stacking N compatible DCQCN runs into one
:class:`repro.cc.grid_bank.GridBank` must reproduce each run's solo
vector execution *bit for bit* — sampled rate/queue series, job
timelines, and the RNG stream positions every generator is left at.
The metamorphic suite below checks that over randomized grids (mixed
seeds x timers x fault schedules) and over the batch sizes that stress
the lane machinery: 1 (degenerate), 2 (minimal), odd, and a wide 64.

The runner half pins the integration contract: ``run_many(batch=True)``
is byte-identical to ``batch=False`` (results *and* cache entries), a
fully cached grid never touches the process pool, and the grouping
screen only admits specs the bank can actually represent.
"""

import json

import numpy as np
import pytest

from repro import io
from repro.cc.dcqcn import (
    AGGRESSIVE_TIMER,
    DEFAULT_TIMER,
    DcqcnFluidSimulator,
    DcqcnParams,
    OnOffDcqcnJob,
)
from repro.cc.grid_bank import GridBank, grid_compatible, run_grid
from repro.faults import (
    InjectionSchedule,
    LinkFailure,
    PfcStorm,
    RateChange,
    Straggler,
)
from repro.runner import (
    RunSpec,
    ScenarioSpec,
    SenderSpec,
    derive_seed,
    run_many,
)
from repro.runner.grid import (
    DEFAULT_DT,
    DEFAULT_ENGINE,
    MIN_GROUP,
    batchable_spec,
    execute_batched,
    plan_groups,
)
from repro.telemetry.session import Telemetry, use
from repro.units import gbps

#: Tick size for engine-level tests: coarse enough to keep 64-run
#: grids cheap, same code paths as the 5 µs default.
DT = 10e-6
DURATION = 0.004

#: Fault schedules drawn by the randomized grids — every window mode
#: (scaled capacity, freeze, storm) plus a clean control.
SCHEDULES = (
    None,
    InjectionSchedule(events=(
        RateChange("L1", 0.0007, 0.0013, 0.4),
        RateChange("L1", 0.0021, 0.0029, 1.5),
    )),
    InjectionSchedule(events=(
        LinkFailure("L1", 0.0011, 0.0017),
    )),
    InjectionSchedule(events=(
        PfcStorm("L1", 0.0008, 0.0012),
        Straggler("J1", 0.0, 0.003, 1.6),
    )),
)

TIMERS = (DEFAULT_TIMER, AGGRESSIVE_TIMER)


def _build_run(index, grid_seed):
    """One randomized run: seed, timers, faults, and sender mix.

    Returns ``(sim, jobs, rngs)`` like the fault-equivalence tests; the
    draw is deterministic in ``(index, grid_seed)`` so the solo and
    batched twins are built identically.
    """
    rng = np.random.default_rng(1000 * grid_seed + index)
    faults = SCHEDULES[int(rng.integers(len(SCHEDULES)))]
    capacity = gbps(50)
    sim = DcqcnFluidSimulator(
        capacity=capacity, dt=DT, engine="vector", faults=faults
    )
    params = DcqcnParams(line_rate=capacity)
    jobs, rngs = {}, []
    n_senders = 2 + int(rng.integers(2))
    for s in range(n_senders):
        timer = TIMERS[int(rng.integers(len(TIMERS)))]
        sender_rng = np.random.default_rng(
            int(rng.integers(1, 2**31))
        )
        rngs.append(sender_rng)
        name = f"J{s + 1}"
        if s % 2 == 0:
            job = OnOffDcqcnJob(
                name,
                params.with_timer(timer),
                sender_rng,
                compute_time=0.0009,
                comm_bytes=0.0011 * capacity,
                start_offset=s * 0.0002,
            )
            sim.add_source(job)
            jobs[name] = job
        else:
            sim.add_sender(name, params.with_timer(timer), sender_rng)
    return sim, jobs, rngs


def _build_grid(n_runs, grid_seed):
    return [_build_run(i, grid_seed) for i in range(n_runs)]


def _assert_bit_identical(solo, batched):
    """Solo and batched twins agree on every observable surface."""
    (trace_s, jobs_s, rngs_s) = solo
    (trace_b, jobs_b, rngs_b) = batched
    assert set(trace_s.rate_series) == set(trace_b.rate_series)
    for name, series in trace_s.rate_series.items():
        other = trace_b.rate_series[name]
        assert np.array_equal(series.times, other.times), name
        assert np.array_equal(series.values, other.values), name
    assert np.array_equal(
        trace_s.queue_series.times, trace_b.queue_series.times
    )
    assert np.array_equal(
        trace_s.queue_series.values, trace_b.queue_series.values
    )
    assert set(jobs_s) == set(jobs_b)
    for name in jobs_s:
        assert (
            repr(jobs_s[name].timeline.__dict__)
            == repr(jobs_b[name].timeline.__dict__)
        ), name
    for rng_s, rng_b in zip(rngs_s, rngs_b):
        assert rng_s.bit_generator.state == rng_b.bit_generator.state


class TestGridBankMetamorphic:
    """Batched == sequential over randomized grids."""

    @pytest.mark.parametrize("n_runs", [1, 2, 3, 64])
    def test_batched_matches_sequential(self, n_runs):
        solo = _build_grid(n_runs, grid_seed=n_runs)
        twin = _build_grid(n_runs, grid_seed=n_runs)
        solo_traces = [sim.run(DURATION) for sim, _, _ in solo]
        grid_traces = run_grid(
            [sim for sim, _, _ in twin], DURATION
        )
        for (_, jobs_s, rngs_s), trace_s, (_, jobs_b, rngs_b), trace_b in zip(
            solo, solo_traces, twin, grid_traces
        ):
            _assert_bit_identical(
                (trace_s, jobs_s, rngs_s), (trace_b, jobs_b, rngs_b)
            )

    def test_mixed_dt_grid_partitions_by_tick(self):
        """run_grid stacks per-dt subsets and still matches solo."""
        coarse = [_build_run(i, grid_seed=5) for i in range(2)]
        fine_sim = DcqcnFluidSimulator(
            capacity=gbps(50), dt=DT / 2, engine="vector"
        )
        fine_sim.add_sender(
            "J1",
            DcqcnParams(line_rate=gbps(50)),
            np.random.default_rng(99),
        )
        twin_coarse = [_build_run(i, grid_seed=5) for i in range(2)]
        twin_fine = DcqcnFluidSimulator(
            capacity=gbps(50), dt=DT / 2, engine="vector"
        )
        twin_fine.add_sender(
            "J1",
            DcqcnParams(line_rate=gbps(50)),
            np.random.default_rng(99),
        )
        solo_traces = [sim.run(DURATION) for sim, _, _ in coarse]
        solo_traces.append(fine_sim.run(DURATION))
        grid_traces = run_grid(
            [sim for sim, _, _ in twin_coarse] + [twin_fine], DURATION
        )
        for trace_s, trace_b in zip(solo_traces, grid_traces):
            for name, series in trace_s.rate_series.items():
                other = trace_b.rate_series[name]
                assert np.array_equal(series.values, other.values)

    def test_grid_compatible_rejects_special_configs(self):
        scalar = DcqcnFluidSimulator(dt=DT, engine="scalar")
        assert not grid_compatible(scalar)
        pfc = DcqcnFluidSimulator(dt=DT, pfc_pause_threshold=1e6)
        assert not grid_compatible(pfc)
        plain = DcqcnFluidSimulator(dt=DT)
        assert not grid_compatible(plain)  # no senders yet
        plain.add_sender(
            "J1",
            DcqcnParams(line_rate=gbps(50)),
            np.random.default_rng(1),
        )
        assert grid_compatible(plain)

    def test_build_rejects_shared_rng(self):
        """One generator feeding two lanes cannot be interleaved."""
        shared = np.random.default_rng(3)
        sims = []
        for _ in range(2):
            sim = DcqcnFluidSimulator(dt=DT, engine="vector")
            sim.add_sender(
                "J1", DcqcnParams(line_rate=gbps(50)), shared
            )
            sims.append(sim)
        assert GridBank.build(sims) is None


def fluid_specs(n=4, duration=DURATION, seed=0, ragged=False):
    """A batchable fluid grid at test scale (coarse dt option)."""
    specs = []
    for k in range(n):
        scenarios = [
            ScenarioSpec(
                "fair",
                (
                    SenderSpec(name="J1", timer=DEFAULT_TIMER),
                    SenderSpec(name="J2", timer=DEFAULT_TIMER),
                ),
            ),
            ScenarioSpec(
                "unfair",
                (
                    SenderSpec(name="J1", timer=AGGRESSIVE_TIMER),
                    SenderSpec(name="J2", timer=DEFAULT_TIMER),
                ),
            ),
        ]
        if ragged and k % 2 == 1:
            scenarios = scenarios[:1]
        specs.append(
            RunSpec(
                backend="fluid",
                label=f"grid-test-{k}",
                seed=derive_seed(seed, f"grid-test:{k}"),
                duration=duration,
                options=(("dt", DT),),
                scenarios=tuple(scenarios),
            )
        )
    return specs


def canonical(results):
    """Canonical JSON of results — the byte-identity yardstick."""
    return json.dumps(
        [io.run_result_to_dict(result) for result in results],
        sort_keys=True,
    )


class TestRunnerGridTier:
    """run_many(batch=True) == run_many(batch=False), byte for byte."""

    @pytest.mark.parametrize("ragged", [False, True])
    def test_batched_matches_per_spec(self, ragged):
        specs = fluid_specs(ragged=ragged)
        batched = run_many(specs, batch=True, cache=False)
        solo = run_many(specs, batch=False, cache=False)
        assert canonical(batched) == canonical(solo)

    def test_batched_telemetry_matches_per_spec(self):
        specs = fluid_specs(n=2)

        def run(batch):
            session = Telemetry(name="grid-test")
            with use(session):
                run_many(specs, batch=batch, cache=False)
            return session

        with_grid, without = run(True), run(False)
        assert (
            int(with_grid.counter("runner.batched").value) == 2
        )
        assert int(without.counter("runner.batched").value) == 0
        # Same simulation events either way; only the runner counter
        # differs (it is deliberately recorded on both paths).
        assert [r.kind for r in with_grid.trace] == [
            r.kind for r in without.trace
        ]

    def test_cache_entries_byte_identical_across_paths(self, tmp_path):
        specs = fluid_specs(n=2)
        run_many(specs, batch=True, cache=True,
                 cache_dir=tmp_path / "a")
        run_many(specs, batch=False, cache=True,
                 cache_dir=tmp_path / "b")
        files_a = sorted(
            p.relative_to(tmp_path / "a")
            for p in (tmp_path / "a").rglob("*") if p.is_file()
        )
        files_b = sorted(
            p.relative_to(tmp_path / "b")
            for p in (tmp_path / "b").rglob("*") if p.is_file()
        )
        assert files_a == files_b and files_a
        for rel in files_a:
            assert (
                (tmp_path / "a" / rel).read_bytes()
                == (tmp_path / "b" / rel).read_bytes()
            ), rel

    def test_cache_round_trip(self, tmp_path):
        specs = fluid_specs(n=3)
        first = run_many(specs, batch=True, cache=True,
                         cache_dir=tmp_path)
        second = run_many(specs, batch=True, cache=True,
                          cache_dir=tmp_path)
        assert canonical(first) == canonical(second)

    def test_fully_cached_grid_never_opens_pool(
        self, tmp_path, monkeypatch
    ):
        """Satellite regression: a 100%-hit grid spawns zero workers."""
        from repro.runner import parallel

        specs = fluid_specs(n=3)
        run_many(specs, batch=True, cache=True, cache_dir=tmp_path)

        class PoolBomb:
            def __init__(self, *args, **kwargs):
                raise AssertionError(
                    "process pool opened on a fully cached run"
                )

        monkeypatch.setattr(
            parallel, "ProcessPoolExecutor", PoolBomb
        )
        replayed = run_many(
            specs, jobs=4, batch=True, cache=True, cache_dir=tmp_path
        )
        assert canonical(replayed) == canonical(
            run_many(specs, batch=False, cache=False)
        )

    def test_batched_specs_are_cached_for_later_hits(self, tmp_path):
        specs = fluid_specs(n=2)
        session = Telemetry(name="grid-test")
        with use(session):
            run_many(specs, batch=True, cache=True,
                     cache_dir=tmp_path)
            run_many(specs, batch=True, cache=True,
                     cache_dir=tmp_path)
        assert int(session.counter("runner.cache.hits").value) == 2
        assert int(session.counter("runner.batched").value) == 2


class TestGroupingScreen:
    """plan_groups only admits what the bank can represent."""

    def test_defaults_mirror_simulator(self):
        import inspect

        signature = inspect.signature(DcqcnFluidSimulator.__init__)
        assert signature.parameters["dt"].default == DEFAULT_DT
        assert (
            signature.parameters["engine"].default == DEFAULT_ENGINE
        )

    def test_rejects_non_fluid_and_special_specs(self):
        fluid = fluid_specs(n=1)[0]
        assert batchable_spec(fluid)
        assert not batchable_spec(fluid.replace(backend="phase"))
        assert not batchable_spec(fluid.replace(scenarios=()))
        assert not batchable_spec(fluid.replace(duration=0.0))
        assert not batchable_spec(
            fluid.replace(options=(("engine", "scalar"),))
        )
        assert not batchable_spec(
            fluid.replace(
                options=(("pfc_pause_threshold", 1e6),)
            )
        )
        routed = ScenarioSpec(
            "routed",
            (
                SenderSpec(
                    name="J1",
                    timer=DEFAULT_TIMER,
                    route=("L1", "L2"),
                ),
            ),
        )
        assert not batchable_spec(
            fluid.replace(scenarios=(routed,))
        )

    def test_groups_split_by_dt_and_duration(self):
        base = fluid_specs(n=2)
        other_dt = [
            spec.replace(options=(("dt", DT * 2),))
            for spec in fluid_specs(n=2, seed=1)
        ]
        other_duration = [
            spec.replace(duration=DURATION * 2)
            for spec in fluid_specs(n=1, seed=2)
        ]
        indexed = list(
            enumerate(base + other_dt + other_duration)
        )
        groups = plan_groups(indexed)
        assert groups == [[0, 1], [2, 3]]
        assert MIN_GROUP == 2  # the singleton stayed on the solo path

    def test_execute_batched_falls_back_on_scalar_engine(self):
        # The declarative screen catches this earlier in run_many;
        # execute_batched itself must also refuse gracefully.
        specs = [
            spec.replace(options=(("dt", DT), ("engine", "scalar")))
            for spec in fluid_specs(n=2)
        ]
        assert execute_batched(specs) is None
