"""Switch-model tests: fluid queue, ECN marking, priority, WFQ, AIMD."""

import pytest

from repro.cc.aimd import AimdFluidSimulator, AimdParams
from repro.errors import ConfigError, SimulationError
from repro.switches.ecn import RedEcnMarker
from repro.switches.priority import StrictPriorityScheduler
from repro.switches.queues import FluidQueue
from repro.switches.wfq import WeightedFairScheduler
from repro.units import gbps, kib


class TestFluidQueue:
    def test_builds_under_overload(self):
        q = FluidQueue(capacity=100.0)
        q.step(arrival_rate=150.0, dt=1.0)
        assert q.occupancy == pytest.approx(50.0)

    def test_drains_under_underload(self):
        q = FluidQueue(capacity=100.0)
        q.step(150.0, 1.0)
        q.step(0.0, 0.25)
        assert q.occupancy == pytest.approx(25.0)

    def test_never_negative(self):
        q = FluidQueue(capacity=100.0)
        q.step(0.0, 10.0)
        assert q.occupancy == 0.0

    def test_tail_drop_accounts_bytes(self):
        q = FluidQueue(capacity=100.0, max_occupancy=10.0)
        q.step(200.0, 1.0)
        assert q.occupancy == 10.0
        assert q.dropped_bytes == pytest.approx(90.0)

    def test_reset(self):
        q = FluidQueue(capacity=100.0, max_occupancy=10.0)
        q.step(200.0, 1.0)
        q.reset()
        assert q.occupancy == 0.0
        assert q.dropped_bytes == 0.0

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigError):
            FluidQueue(capacity=0.0)

    def test_negative_dt_rejected(self):
        with pytest.raises(ConfigError):
            FluidQueue(100.0).step(1.0, -0.1)


class TestRedEcn:
    def test_no_marking_below_kmin(self):
        marker = RedEcnMarker(kmin=100, kmax=400, pmax=0.1)
        assert marker.marking_probability(50) == 0.0
        assert marker.marking_probability(100) == 0.0

    def test_certain_marking_above_kmax(self):
        marker = RedEcnMarker(kmin=100, kmax=400, pmax=0.1)
        assert marker.marking_probability(400) == 1.0
        assert marker.marking_probability(1000) == 1.0

    def test_linear_ramp(self):
        marker = RedEcnMarker(kmin=100, kmax=300, pmax=0.2)
        assert marker.marking_probability(200) == pytest.approx(0.1)

    def test_monotone(self):
        marker = RedEcnMarker()
        probs = [
            marker.marking_probability(q)
            for q in (0, kib(50), kib(150), kib(300), kib(500))
        ]
        assert probs == sorted(probs)

    def test_bad_thresholds_rejected(self):
        with pytest.raises(ConfigError):
            RedEcnMarker(kmin=400, kmax=100)
        with pytest.raises(ConfigError):
            RedEcnMarker(pmax=0.0)


class TestStrictPriority:
    def test_highest_class_served_first(self):
        sched = StrictPriorityScheduler(capacity=100.0)
        rates = sched.service_rates({2: 80.0, 1: 80.0})
        assert rates[2] == 80.0
        assert rates[1] == 20.0

    def test_no_demand_no_service(self):
        sched = StrictPriorityScheduler(100.0)
        assert sched.service_rates({1: 0.0}) == {1: 0.0}

    def test_underload_serves_everyone(self):
        sched = StrictPriorityScheduler(100.0)
        rates = sched.service_rates({3: 30.0, 2: 30.0, 1: 30.0})
        assert sum(rates.values()) == pytest.approx(90.0)

    def test_total_never_exceeds_capacity(self):
        sched = StrictPriorityScheduler(100.0)
        rates = sched.service_rates({5: 70.0, 4: 70.0, 3: 70.0})
        assert sum(rates.values()) == pytest.approx(100.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ConfigError):
            StrictPriorityScheduler(100.0).service_rates({1: -5.0})


class TestWfq:
    def test_backlogged_flows_split_by_weight(self):
        sched = WeightedFairScheduler(90.0)
        rates = sched.service_rates(
            {"a": (2.0, 1000.0), "b": (1.0, 1000.0)}
        )
        assert rates["a"] == pytest.approx(60.0)
        assert rates["b"] == pytest.approx(30.0)

    def test_demand_limited_flow_releases_capacity(self):
        sched = WeightedFairScheduler(90.0)
        rates = sched.service_rates({"a": (1.0, 10.0), "b": (1.0, 1000.0)})
        assert rates["a"] == pytest.approx(10.0)
        assert rates["b"] == pytest.approx(80.0)

    def test_no_flow_exceeds_demand(self):
        sched = WeightedFairScheduler(1000.0)
        rates = sched.service_rates({"a": (1.0, 5.0), "b": (3.0, 7.0)})
        assert rates["a"] == pytest.approx(5.0)
        assert rates["b"] == pytest.approx(7.0)

    def test_zero_demand(self):
        sched = WeightedFairScheduler(10.0)
        assert sched.service_rates({"a": (1.0, 0.0)}) == {"a": 0.0}

    def test_bad_weight_rejected(self):
        with pytest.raises(ConfigError):
            WeightedFairScheduler(10.0).service_rates({"a": (0.0, 1.0)})


class TestAimd:
    def test_two_senders_converge_to_rough_fairness(self):
        sim = AimdFluidSimulator(capacity=gbps(40), buffer_bytes=kib(256))
        sim.add_sender("a")
        sim.add_sender("b")
        result = sim.run(0.4)
        ra = result.mean_rate("a", start=0.2)
        rb = result.mean_rate("b", start=0.2)
        # Synchronized AIMD is exactly fair in the fluid model.
        assert ra == pytest.approx(rb, rel=0.05)

    def test_single_sender_saturates(self):
        sim = AimdFluidSimulator(capacity=gbps(10))
        sim.add_sender("a", AimdParams(line_rate=gbps(50)))
        result = sim.run(0.5)
        assert result.mean_rate("a", start=0.3) > gbps(8)

    def test_run_without_senders_rejected(self):
        with pytest.raises(SimulationError):
            AimdFluidSimulator().run(0.01)

    def test_bad_decrease_factor_rejected(self):
        with pytest.raises(ConfigError):
            AimdParams(decrease_factor=1.0)
