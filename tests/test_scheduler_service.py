"""Tests for the online cluster service and the replay shim.

Covers the event loop (departures before arrivals, bounded queue with
deterministic retries), the cluster-wide admission audit (including the
fixture where it *disagrees* with the legacy per-link audit), the empty
``ClusterReport`` guard, and the ``service`` runner backend's determinism
across worker counts plus cacheability.
"""

import math
from typing import List, Sequence

import pytest

from repro.core.compatibility import CompatibilityChecker
from repro.errors import PlacementError, SimulationError
from repro.net.routing import Router
from repro.net.topology import Topology
from repro.runner import RunSpec, run_many
from repro.scheduler.cluster import ClusterState
from repro.scheduler.events import replay
from repro.scheduler.placement import (
    CompatibilityAwarePlacement,
    ConsolidatedPlacement,
    PlacementPolicy,
)
from repro.scheduler.service import ClusterService
from repro.scheduler.simulation import ClusterReport
from repro.units import gbps, ms
from repro.workloads.job import JobSpec
from repro.workloads.traces import JobArrival, poisson_arrivals

CAP = gbps(42)


def _cluster(n_racks=2, hosts_per_rack=1, gpus=4):
    topology = Topology.leaf_spine(
        n_racks=n_racks,
        hosts_per_rack=hosts_per_rack,
        n_spines=1,
        host_capacity=CAP,
        uplink_capacity=CAP,
    )
    return ClusterState(topology, gpus_per_host=gpus, router=Router(topology))


def _job(job_id, compute_ms, comm_ms, workers=2):
    return JobSpec(
        job_id=job_id,
        compute_time=ms(compute_ms),
        comm_bytes=ms(comm_ms) * CAP,
        n_workers=workers,
    )


class FixedPlacement(PlacementPolicy):
    """Test-only policy: scripted hosts per job id."""

    name = "fixed"

    def __init__(self, plan):
        self.plan = dict(plan)

    def place(self, cluster, spec, n_workers):
        try:
            return list(self.plan[spec.job_id])
        except KeyError:
            raise PlacementError(f"no scripted hosts for {spec.job_id}")


class TestServiceEventLoop:
    def test_departure_frees_capacity_for_queued_job(self):
        cluster = _cluster(n_racks=1, gpus=4)
        service = ClusterService(
            cluster, ConsolidatedPlacement(), queue_limit=4
        )
        first = _job("first", 300, 100, workers=4)
        second = _job("second", 300, 100, workers=4)
        service.submit_all(
            [
                JobArrival(time=0.0, spec=first, n_workers=4, lifetime=5.0),
                JobArrival(time=1.0, spec=second, n_workers=4, lifetime=5.0),
            ]
        )
        stats = service.run()
        assert stats.admitted == 2
        assert stats.queued == 1
        assert stats.retry_admissions == 1
        outcomes = [(r.outcome, r.job_id, r.time) for r in stats.records]
        assert outcomes == [
            ("admitted", "first", 0.0),
            ("queued", "second", 1.0),
            ("admitted", "second", 5.0),  # retried at the departure
        ]
        assert stats.records[-1].attempt == 1

    def test_equal_time_departure_processed_before_arrival(self):
        cluster = _cluster(n_racks=1, gpus=4)
        service = ClusterService(
            cluster, ConsolidatedPlacement(), queue_limit=0
        )
        spec = _job("one", 300, 100, workers=4)
        service.submit_all(
            [
                JobArrival(time=0.0, spec=spec, n_workers=4, lifetime=2.0),
                JobArrival(
                    time=2.0,
                    spec=spec.with_id("two"),
                    n_workers=4,
                    lifetime=2.0,
                ),
            ]
        )
        stats = service.run()
        assert stats.admitted == 2
        assert stats.rejected == 0

    def test_zero_queue_rejects_immediately(self):
        cluster = _cluster(n_racks=1, gpus=4)
        service = ClusterService(
            cluster, ConsolidatedPlacement(), queue_limit=0
        )
        spec = _job("big", 300, 100, workers=4)
        service.submit_all(
            [
                JobArrival(time=0.0, spec=spec, n_workers=4, lifetime=99.0),
                JobArrival(
                    time=1.0,
                    spec=spec.with_id("late"),
                    n_workers=4,
                    lifetime=99.0,
                ),
            ]
        )
        stats = service.run()
        assert stats.admitted == 1
        assert stats.rejected == 1
        assert stats.queued == 0

    def test_bounded_queue_overflows_to_rejection(self):
        cluster = _cluster(n_racks=1, gpus=4)
        service = ClusterService(
            cluster, ConsolidatedPlacement(), queue_limit=1
        )
        spec = _job("a", 300, 100, workers=4)
        arrivals = [
            JobArrival(
                time=float(i),
                spec=spec.with_id(f"a{i}"),
                n_workers=4,
                lifetime=1000.0,
            )
            for i in range(3)
        ]
        service.submit_all(arrivals)
        stats = service.run()
        # a0 admitted, a1 queued (admitted after a0's departure via the
        # retry event), a2 bounced off the full queue.
        assert stats.admitted == 2
        assert stats.retry_admissions == 1
        assert stats.queued == 1
        assert stats.rejected == 1
        assert stats.peak_queue_depth == 1

    def test_network_jobs_tracked_in_engine(self):
        cluster = _cluster(n_racks=2, gpus=2)
        service = ClusterService(cluster, ConsolidatedPlacement())
        spec = _job("wide", 300, 100, workers=4)  # must span both racks
        service.submit_all(
            [JobArrival(time=0.0, spec=spec, n_workers=4, lifetime=3.0)]
        )
        stats = service.run(until=1.0)
        assert stats.admitted == 1
        assert "wide" in service.engine
        # The departure is beyond the horizon; draining past it removes.
        service.run()
        assert "wide" not in service.engine
        assert service.concurrent == 0

    def test_run_is_deterministic(self):
        def outcome():
            cluster = _cluster(n_racks=3, gpus=4)
            service = ClusterService(
                cluster,
                CompatibilityAwarePlacement(),
                queue_limit=8,
            )
            service.submit_all(
                poisson_arrivals(
                    30, seed=11, mean_interarrival_s=20.0,
                    mean_lifetime_s=120.0,
                )
            )
            stats = service.run()
            return [r.to_dict() for r in stats.records]

        assert outcome() == outcome()

    def test_invalid_arrivals_rejected(self):
        cluster = _cluster()
        service = ClusterService(cluster, ConsolidatedPlacement())
        spec = _job("x", 300, 100)
        with pytest.raises(SimulationError):
            service.submit(
                JobArrival(time=-1.0, spec=spec, n_workers=2, lifetime=1.0)
            )
        with pytest.raises(SimulationError):
            service.submit(
                JobArrival(time=0.0, spec=spec, n_workers=2, lifetime=0.0)
            )
        with pytest.raises(SimulationError):
            ClusterService(
                cluster, ConsolidatedPlacement(), queue_limit=-1
            )


class TestClusterWideAudit:
    """Satellite: the cluster-wide audit differs from per-link checks.

    Fixture: A spans racks 0-1, B racks 0-2, C racks 3-2 on a one-spine
    fabric, so A and B share exactly one link (rack 0's uplink) and B and
    C share exactly one other (rack 2's downlink). A and B are pairwise
    infeasible (250 ms comm each of a 400 ms period); B and C fit
    (250 + 100 <= 400). The legacy per-link audit looks only at the
    arriving job's links: C's links are clean in isolation, so it calls
    C compatible. The cluster-wide audit sees C join the connected
    component {A, B, C}, which admits no rotation assignment at all.
    """

    def _fixture(self):
        plan = {
            "A": ["h0_0", "h1_0"],
            "B": ["h0_0", "h2_0"],
            "C": ["h3_0", "h2_0"],
        }
        arrivals = [
            JobArrival(
                time=float(i),
                spec=spec,
                n_workers=2,
                lifetime=1000.0,
            )
            for i, spec in enumerate(
                [
                    _job("A", 150, 250),
                    _job("B", 150, 250),
                    _job("C", 300, 100),
                ]
            )
        ]
        return plan, arrivals

    def _legacy_per_link_audit(self, cluster, checker, job_id):
        """The old audit: each of the job's links checked independently."""
        job = cluster.job(job_id)
        for sharers in cluster.jobs_sharing_links_with(job.links).values():
            specs = [j.spec for j in sharers if j.uses_network]
            if len(specs) >= 2 and not checker.check(specs).compatible:
                return False
        return True

    def test_audits_disagree_on_three_job_two_link_fixture(self):
        checker = CompatibilityChecker(capacity=CAP)
        plan, arrivals = self._fixture()

        cluster = _cluster(n_racks=4, gpus=4)
        stats = replay(
            cluster, FixedPlacement(plan), arrivals, checker=checker
        )
        assert stats.placed == 3
        # Cluster-wide: B makes {A, B} unsatisfiable, and C *joins* that
        # component, so only A's arrival was compatible.
        assert stats.compatible_placements == 1
        assert stats.incompatible_placements == 2

        # Legacy audit of the same end state: C's own links are clean
        # (its only contended link carries the feasible pair {B, C}), so
        # the per-link relaxation calls C compatible — the cluster-wide
        # audit above counted C incompatible. That is the divergence.
        legacy_verdicts = {
            job_id: self._legacy_per_link_audit(cluster, checker, job_id)
            for job_id in ("A", "B", "C")
        }
        assert legacy_verdicts == {"A": False, "B": False, "C": True}

    def test_engine_verdict_pins_the_shared_component(self):
        checker = CompatibilityChecker(capacity=CAP)
        plan, arrivals = self._fixture()
        cluster = _cluster(n_racks=4, gpus=4)
        service = ClusterService(
            cluster, FixedPlacement(plan), checker=checker, queue_limit=0
        )
        service.submit_all(arrivals)
        stats = service.run(until=10.0)
        by_job = {
            r.job_id: r for r in stats.records if r.outcome == "admitted"
        }
        assert by_job["A"].compatible is True
        assert by_job["B"].compatible is False
        assert by_job["C"].compatible is False
        assert by_job["C"].slowdown_proxy > 1.0
        assert service.engine.components() == [["A", "B", "C"]]


class TestReplayShim:
    def test_replay_matches_legacy_counters(self):
        cluster = _cluster(n_racks=1, gpus=4)
        spec = _job("short", 300, 100, workers=4)
        arrivals = [
            JobArrival(time=0.0, spec=spec, n_workers=4, lifetime=1.0),
            JobArrival(
                time=10.0,
                spec=spec.with_id("later"),
                n_workers=4,
                lifetime=1.0,
            ),
        ]
        stats = replay(cluster, ConsolidatedPlacement(), arrivals)
        assert stats.placed == 2
        assert stats.rejected == 0
        assert stats.compatibility_rate == 1.0
        # Like the legacy sweep, jobs outliving the last arrival stay.
        assert [job.job_id for job in cluster.jobs] == ["later"]


class TestClusterReportEmpty:
    """Satellite: empty reports return NaN instead of raising/warning."""

    def test_empty_report_slowdowns_are_nan(self):
        import warnings

        report = ClusterReport()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # empty np.mean would warn
            assert math.isnan(report.mean_slowdown)
            assert math.isnan(report.max_slowdown)
        assert report.jobs_at_solo_speed == 0

    def test_populated_report_unchanged(self):
        report = ClusterReport(slowdown={"a": 1.0, "b": 1.5})
        assert report.mean_slowdown == pytest.approx(1.25)
        assert report.max_slowdown == pytest.approx(1.5)


def _service_specs(seeds: Sequence[int] = (0, 1)) -> List[RunSpec]:
    return [
        RunSpec(
            backend="service",
            label=f"svc-{seed}",
            seed=seed,
            options=(
                ("n_arrivals", 25),
                ("mean_interarrival_s", 15.0),
                ("mean_lifetime_s", 120.0),
                ("placement", "compatibility-aware"),
                ("n_racks", 3),
                ("hosts_per_rack", 1),
                ("gpus_per_host", 4),
            ),
        )
        for seed in seeds
    ]


class TestServiceBackend:
    def test_serial_and_parallel_results_identical(self):
        serial = run_many(_service_specs(), jobs=1, cache=False)
        parallel = run_many(_service_specs(), jobs=4, cache=False)
        assert [r.data for r in serial] == [r.data for r in parallel]

    def test_results_cache_and_replay(self, tmp_path):
        specs = _service_specs(seeds=(7,))
        first = run_many(specs, jobs=1, cache=True, cache_dir=tmp_path)
        second = run_many(specs, jobs=1, cache=True, cache_dir=tmp_path)
        assert first[0].data == second[0].data
        assert first[0].spec_hash == specs[0].content_hash()

    def test_trace_process_round_trips_jobspecs(self):
        from repro.workloads.traces import arrival_to_row

        arrivals = poisson_arrivals(
            8, seed=5, mean_interarrival_s=10.0, mean_lifetime_s=60.0
        )
        rows = tuple(arrival_to_row(a) for a in arrivals)
        spec = RunSpec(
            backend="service",
            seed=5,
            options=(
                ("arrival_process", "trace"),
                ("trace", rows),
                ("placement", "consolidated"),
                ("n_racks", 3),
                ("hosts_per_rack", 1),
            ),
        )
        assert spec.cacheable()
        [result] = run_many([spec], jobs=1, cache=False)
        assert result.data["submitted"] == 8


class TestFatTreeService:
    """The service backend on a three-tier fat-tree fabric."""

    @staticmethod
    def _spec(seed=0, **extra):
        options = {
            "n_arrivals": 20,
            "mean_interarrival_s": 15.0,
            "mean_lifetime_s": 120.0,
            "placement": "compatibility-aware",
            "topology": "fat-tree",
            "fat_tree_k": 4,
            "gpus_per_host": 4,
        }
        options.update(extra)
        return RunSpec(
            backend="service",
            label=f"svc-fattree-{seed}",
            seed=seed,
            options=tuple(sorted(options.items())),
        )

    def test_fat_tree_recipe_places_jobs(self):
        [result] = run_many([self._spec()], jobs=1, cache=False)
        assert result.data["admitted"] > 0

    def test_cluster_level_audit_is_deterministic(self):
        spec = self._spec(cluster_level=True)
        assert spec.cacheable()
        [first] = run_many([spec], jobs=1, cache=False)
        [second] = run_many([spec], jobs=1, cache=False)
        assert first.data == second.data
        assert first.data["admitted"] > 0

    def test_unknown_topology_recipe_rejected(self):
        with pytest.raises(SimulationError, match="topology recipe"):
            run_many(
                [self._spec(topology="torus")], jobs=1, cache=False
            )

    def test_compat_placement_on_fat_tree_cluster(self):
        topology = Topology.fat_tree(4, host_capacity=CAP)
        cluster = ClusterState(
            topology, gpus_per_host=1, router=Router(topology)
        )
        # Racks are the fat tree's edge switches.
        racks = set(cluster.hosts_by_rack())
        assert "edge0_0" in racks and len(racks) == 8
        policy = CompatibilityAwarePlacement(cluster_level=True)
        hosts = policy.place(cluster, _job("a", 100, 40, workers=3), 3)
        assert len(hosts) == 3
        cluster.place(_job("a", 100, 40, workers=3), hosts)
        # Next job must spill across racks and still place cleanly.
        more = policy.place(cluster, _job("b", 100, 35, workers=4), 4)
        assert len(more) == 4
