"""Tests for compatibility-aware job grouping (link bin packing)."""

import pytest

from repro.core.circle import JobCircle
from repro.core.compatibility import CompatibilityChecker
from repro.core.unified import UnifiedCircle
from repro.errors import CompatibilityError
from repro.scheduler.grouping import group_jobs
from repro.units import gbps

CHECKER = CompatibilityChecker(capacity=gbps(42))


def _light(job_id, period=300, comm=60):
    return JobCircle.from_phases(job_id, period - comm, comm)


def _heavy(job_id, period=300, comm=180):
    return JobCircle.from_phases(job_id, period - comm, comm)


class TestGrouping:
    def test_light_population_fits_one_group(self):
        circles = [_light(f"l{i}") for i in range(4)]  # 4 x 20% = 80%
        result = group_jobs(circles, checker=CHECKER)
        assert len(result.groups) == 1
        assert result.unplaced == []
        assert result.placed_count == 4

    def test_every_group_schedule_is_collision_free(self):
        circles = [_light(f"l{i}") for i in range(4)] + [
            _heavy(f"h{i}") for i in range(3)
        ]
        result = group_jobs(circles, checker=CHECKER)
        for group in result.groups:
            if len(group.circles) < 2:
                continue
            unified = UnifiedCircle(group.circles)
            assert unified.overlap_ticks(group.rotations) == 0, group.index

    def test_heavy_jobs_spread_over_groups(self):
        # 60%-comm jobs: at most one per group plus light leftovers.
        circles = [_heavy(f"h{i}") for i in range(3)]
        result = group_jobs(circles, checker=CHECKER)
        assert len(result.groups) == 3

    def test_budget_forces_unplaced(self):
        circles = [_heavy(f"h{i}") for i in range(3)]
        result = group_jobs(circles, max_groups=2, checker=CHECKER)
        assert len(result.groups) == 2
        assert len(result.unplaced) == 1

    def test_group_of_lookup(self):
        circles = [_light("a"), _heavy("b")]
        result = group_jobs(circles, checker=CHECKER)
        assert result.group_of("a") is not None
        assert result.group_of("ghost") is None

    def test_first_fit_decreasing_order(self):
        # Heavy jobs are seated first; lights then fill around them.
        circles = [_light("l0"), _heavy("h0"), _light("l1")]
        result = group_jobs(circles, checker=CHECKER)
        first_group = result.groups[0]
        assert first_group.job_ids[0] == "h0"

    def test_mixed_periods_separate(self):
        # Incommensurate periods rarely mesh: expect separate groups.
        a = JobCircle.from_phases("a", 150, 150)  # period 300, 50%
        b = JobCircle.from_phases("b", 103, 104)  # period 207, 50%
        result = group_jobs([a, b], checker=CHECKER)
        assert len(result.groups) == 2

    def test_duplicate_ids_rejected(self):
        circle = _light("same")
        with pytest.raises(CompatibilityError):
            group_jobs([circle, circle], checker=CHECKER)

    def test_bad_budget_rejected(self):
        with pytest.raises(CompatibilityError):
            group_jobs([_light("a")], max_groups=0, checker=CHECKER)

    def test_comm_load_tracks_fill(self):
        circles = [_light(f"l{i}") for i in range(3)]
        result = group_jobs(circles, checker=CHECKER)
        assert result.groups[0].comm_load == pytest.approx(0.6)
