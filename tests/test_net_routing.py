"""Routing tests: shortest path, ECMP determinism, sharing maps."""

import pytest

from repro.errors import RoutingError
from repro.net.routing import EcmpRouter, Router, links_shared_by
from repro.net.topology import Topology
from repro.units import gbps


@pytest.fixture
def leaf_spine():
    return Topology.leaf_spine(n_racks=2, hosts_per_rack=2, n_spines=2)


class TestRouter:
    def test_route_through_bottleneck(self):
        topo = Topology.dumbbell()
        router = Router(topo)
        names = [l.name for l in router.route("ha0", "hb0")]
        assert "L1" in names

    def test_same_rack_route_stays_local(self, leaf_spine):
        router = Router(leaf_spine)
        path = router.node_path("h0_0", "h0_1")
        assert path == ["h0_0", "tor0", "h0_1"]

    def test_no_route_raises(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        with pytest.raises(RoutingError):
            Router(topo).route("a", "b")

    def test_unknown_node_raises(self):
        topo = Topology.dumbbell()
        with pytest.raises(RoutingError):
            Router(topo).route("ha0", "ghost")

    def test_route_is_cached_and_stable(self, leaf_spine):
        router = Router(leaf_spine)
        assert router.node_path("h0_0", "h1_0") == router.node_path(
            "h0_0", "h1_0"
        )


class TestEcmp:
    def test_equal_cost_paths_found(self, leaf_spine):
        router = EcmpRouter(leaf_spine)
        paths = router.equal_cost_paths("h0_0", "h1_0")
        assert len(paths) == 2  # one per spine

    def test_flow_pinning_is_deterministic(self, leaf_spine):
        a = EcmpRouter(leaf_spine)
        b = EcmpRouter(leaf_spine)
        assert a.node_path("h0_0", "h1_0", "flow1") == b.node_path(
            "h0_0", "h1_0", "flow1"
        )

    def test_different_flows_can_take_different_paths(self, leaf_spine):
        router = EcmpRouter(leaf_spine)
        paths = {
            tuple(router.node_path("h0_0", "h1_0", f"flow{i}"))
            for i in range(32)
        }
        assert len(paths) == 2  # both spines get used across many flows

    def test_salt_changes_hashing(self, leaf_spine):
        paths_a = [
            tuple(EcmpRouter(leaf_spine, salt=0).node_path(
                "h0_0", "h1_0", f"f{i}"))
            for i in range(16)
        ]
        paths_b = [
            tuple(EcmpRouter(leaf_spine, salt=1).node_path(
                "h0_0", "h1_0", f"f{i}"))
            for i in range(16)
        ]
        assert paths_a != paths_b

    def test_single_path_shortcut(self):
        topo = Topology.dumbbell()
        router = EcmpRouter(topo)
        assert router.node_path("ha0", "hb0") == [
            "ha0", "S0", "S1", "hb0"
        ]


class TestSharingMap:
    def test_bottleneck_shared(self):
        topo = Topology.dumbbell(hosts_per_side=2)
        router = Router(topo)
        sharing = links_shared_by(
            router,
            [("ha0", "hb0", "f0"), ("ha1", "hb1", "f1")],
        )
        bottleneck = topo.link("S0", "S1")
        assert sharing[bottleneck] == [0, 1]

    def test_host_links_not_shared(self):
        topo = Topology.dumbbell(hosts_per_side=2)
        router = Router(topo)
        sharing = links_shared_by(
            router,
            [("ha0", "hb0", "f0"), ("ha1", "hb1", "f1")],
        )
        assert sharing[topo.link("ha0", "S0")] == [0]
        assert sharing[topo.link("ha1", "S0")] == [1]
