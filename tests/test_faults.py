"""Fault-injection runtime: schedule validation and seeded determinism.

The injection schedule is validated once at build time — the simulators
assume well-formed input — so the validation rules are pinned here as
property-style tests. Determinism is the harder contract: the same spec
plus the same schedule must produce byte-identical traces and timelines
across repeated runs and across worker fan-out (``jobs=1`` vs
``jobs=4``), because the robustness experiments diff faulted runs
against clean ones.
"""

import json

import pytest

from repro import io
from repro.cc.fair import FairSharing
from repro.errors import ConfigError
from repro.faults import (
    ClockSkew,
    InjectionSchedule,
    JobWarp,
    LatencySpike,
    LinkFailure,
    MODE_FREEZE,
    MODE_NORMAL,
    MODE_STORM,
    PfcStorm,
    RateChange,
    Straggler,
    build_warp,
    capacity_windows,
    single_link,
)
from repro.runner import RunSpec, ScenarioSpec, SenderSpec, run_many
from repro.units import gbps, ms
from repro.workloads.job import JobSpec


class TestScheduleValidation:
    def test_rejects_end_before_start(self):
        with pytest.raises(ConfigError):
            InjectionSchedule(events=(RateChange("L1", 2.0, 1.0, 0.5),))

    def test_rejects_negative_start(self):
        with pytest.raises(ConfigError):
            InjectionSchedule(events=(LinkFailure("L1", -0.5, 1.0),))

    def test_rejects_non_finite_bounds(self):
        with pytest.raises(ConfigError):
            InjectionSchedule(
                events=(LinkFailure("L1", 0.0, float("inf")),)
            )

    def test_rejects_event_past_horizon(self):
        with pytest.raises(ConfigError):
            InjectionSchedule(
                events=(PfcStorm("L1", 0.5, 2.0),), horizon=1.0
            )

    def test_rejects_overlapping_same_link_windows(self):
        with pytest.raises(ConfigError):
            InjectionSchedule(events=(
                RateChange("L1", 0.0, 1.0, 0.5),
                LinkFailure("L1", 0.5, 1.5),
            ))

    def test_rejects_overlapping_same_job_windows(self):
        with pytest.raises(ConfigError):
            InjectionSchedule(events=(
                Straggler("J1", 0.0, 1.0, 2.0),
                ClockSkew("J1", 0.5, 1.5, 0.01),
            ))

    def test_different_targets_may_overlap(self):
        schedule = InjectionSchedule(events=(
            RateChange("L1", 0.0, 1.0, 0.5),
            LinkFailure("L2", 0.5, 1.5),
            Straggler("J1", 0.0, 1.0, 2.0),
            ClockSkew("J2", 0.0, 1.0, 0.01),
        ))
        assert len(schedule) == 4
        assert schedule.link_names() == ["L1", "L2"]
        assert schedule.job_names() == ["J1", "J2"]

    def test_adjacent_windows_do_not_overlap(self):
        schedule = InjectionSchedule(events=(
            RateChange("L1", 0.0, 1.0, 0.5),
            RateChange("L1", 1.0, 2.0, 0.25),
        ))
        assert len(schedule) == 2

    def test_zero_duration_events_are_dropped(self):
        schedule = InjectionSchedule(events=(
            RateChange("L1", 1.0, 1.0, 0.5),
            Straggler("J1", 0.25, 0.25, 3.0),
        ))
        assert schedule.is_empty
        assert len(schedule) == 0

    def test_rejects_bad_factors(self):
        with pytest.raises(ConfigError):
            RateChange("L1", 0.0, 1.0, 0.0).validate(None)
        with pytest.raises(ConfigError):
            Straggler("J1", 0.0, 1.0, -1.0).validate(None)
        with pytest.raises(ConfigError):
            LatencySpike("L1", 0.0, 1.0, -0.001).validate(None)

    def test_rejects_non_events(self):
        with pytest.raises(ConfigError):
            InjectionSchedule(events=("not-an-event",))

    def test_rejects_bad_horizon(self):
        with pytest.raises(ConfigError):
            InjectionSchedule(horizon=0.0)
        with pytest.raises(ConfigError):
            InjectionSchedule(horizon=float("nan"))

    def test_empty_schedule_is_valid(self):
        schedule = InjectionSchedule()
        assert schedule.is_empty
        assert schedule.link_names() == []
        assert single_link(schedule) is None


class TestRuntimeHelpers:
    def test_single_link_rejects_multi_link_schedules(self):
        schedule = InjectionSchedule(events=(
            RateChange("L1", 0.0, 1.0, 0.5),
            LinkFailure("L2", 0.0, 1.0),
        ))
        with pytest.raises(ConfigError):
            single_link(schedule)

    def test_windows_tile_the_run(self):
        schedule = InjectionSchedule(events=(
            RateChange("L1", 0.001, 0.002, 0.5),
            LinkFailure("L1", 0.004, 0.005),
            PfcStorm("L1", 0.007, 0.008),
        ))
        windows = capacity_windows(schedule, 1000, 10e-6, 100.0)
        assert windows[0].start == 0
        assert windows[-1].end == 1000
        for left, right in zip(windows, windows[1:]):
            assert left.end == right.start
        modes = [w.mode for w in windows]
        assert modes == [
            MODE_NORMAL, MODE_NORMAL, MODE_NORMAL, MODE_FREEZE,
            MODE_NORMAL, MODE_STORM, MODE_NORMAL,
        ]
        assert windows[1].capacity == pytest.approx(50.0)
        assert windows[3].capacity == 0.0
        assert windows[5].capacity == 100.0

    def test_empty_schedule_yields_one_normal_window(self):
        for schedule in (None, InjectionSchedule()):
            windows = capacity_windows(schedule, 500, 10e-6, 42.0)
            assert len(windows) == 1
            assert windows[0].start == 0 and windows[0].end == 500
            assert windows[0].mode == MODE_NORMAL
            assert windows[0].capacity == 42.0

    def test_sub_tick_events_collapse_to_noops(self):
        schedule = InjectionSchedule(
            events=(RateChange("L1", 0.0000101, 0.0000102, 0.5),)
        )
        windows = capacity_windows(schedule, 100, 10e-6, 1.0)
        assert len(windows) == 1 and windows[0].mode == MODE_NORMAL

    def test_job_warp_application_order(self):
        warp = JobWarp(
            stragglers=((0.0, 1.0, 2.0),),
            skews=((0.0, 1.0, -0.3),),
            spikes=((0.0, 1.0, 0.05),),
        )
        # 0.1 * 2 - 0.3 -> clamped to 0; comm start 0.5 in spike window.
        assert warp(0.5, 0.1) == pytest.approx(0.05)
        # Outside every window: untouched.
        assert warp(2.0, 0.1) == pytest.approx(0.1)

    def test_build_warp_returns_none_when_untouched(self):
        schedule = InjectionSchedule(
            events=(Straggler("J1", 0.0, 1.0, 2.0),)
        )
        assert build_warp(schedule, "J2") is None
        assert build_warp(None, "J1") is None
        warp = build_warp(schedule, "J1")
        assert warp(0.5, 0.1) == pytest.approx(0.2)

    def test_latency_spike_needs_matching_link(self):
        schedule = InjectionSchedule(
            events=(LatencySpike("L1", 0.0, 1.0, 0.02),)
        )
        assert build_warp(schedule, "J1", links=()) is None
        warp = build_warp(schedule, "J1", links=("L1",))
        assert warp(0.1, 0.1) == pytest.approx(0.12)


class TestCodec:
    def schedule(self):
        return InjectionSchedule(
            events=(
                RateChange("L1", 0.1, 0.2, 0.5),
                LinkFailure("L2", 0.0, 0.05),
                PfcStorm("L3", 0.3, 0.4),
                LatencySpike("L1", 0.5, 0.6, 0.01),
                Straggler("J1", 0.0, 0.9, 1.5),
                ClockSkew("J2", 0.0, 0.9, -0.002),
            ),
            horizon=1.0,
        )

    def test_schedule_round_trip(self):
        schedule = self.schedule()
        data = io.injection_schedule_to_dict(schedule)
        json.dumps(data)  # must be JSON-able
        assert io.injection_schedule_from_dict(data) == schedule

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            io.fault_event_from_dict({"kind": "meteor-strike"})

    def test_run_spec_round_trip_and_hash(self):
        schedule = self.schedule()
        spec = RunSpec(backend="fluid", faults=schedule)
        data = io.run_spec_to_dict(spec)
        assert io.run_spec_from_dict(data).faults == schedule
        # The schedule must be part of the content hash: a faulted and
        # a clean spec must never collide in the result cache.
        assert (
            spec.content_hash()
            != RunSpec(backend="fluid").content_hash()
        )


def _fluid_spec(label="faults-det", seed=11):
    schedule = InjectionSchedule(
        events=(
            RateChange("L1", 0.005, 0.010, 0.4),
            LinkFailure("L1", 0.015, 0.020),
            PfcStorm("L1", 0.030, 0.033),
            Straggler("J1", 0.0, 0.05, 1.5),
        ),
        horizon=0.05,
    )
    senders = tuple(
        SenderSpec(
            f"J{i + 1}",
            125e-6,
            compute_time=0.0009,
            comm_bytes=0.0011 * gbps(50),
            start_offset=i * 0.0002,
            stream=f"faults:J{i + 1}",
        )
        for i in range(3)
    )
    return RunSpec(
        backend="fluid",
        label=label,
        seed=seed,
        capacity=gbps(50),
        duration=0.05,
        scenarios=(ScenarioSpec("only", senders),),
        faults=schedule,
    )


def _phase_spec(seed=3):
    schedule = InjectionSchedule(events=(
        RateChange("L1", 0.5, 1.5, 0.3),
        Straggler("J1", 2.0, 4.0, 2.0),
    ))
    jobs = tuple(
        JobSpec(f"J{i + 1}", ms(100), ms(110) * gbps(42))
        for i in range(2)
    )
    return RunSpec(
        backend="phase",
        seed=seed,
        jobs=jobs,
        policy=FairSharing(),
        n_iterations=10,
        faults=schedule,
    )


def _fingerprint(result):
    return json.dumps(
        io.run_result_to_dict(result), sort_keys=True,
        separators=(",", ":"),
    )


class TestSeededDeterminism:
    @pytest.mark.parametrize("make", [_fluid_spec, _phase_spec])
    def test_repeat_runs_byte_identical(self, make):
        first = _fingerprint(run_many([make()], jobs=1, cache=False)[0])
        second = _fingerprint(run_many([make()], jobs=1, cache=False)[0])
        assert first == second

    @pytest.mark.parametrize("make", [_fluid_spec, _phase_spec])
    def test_worker_fanout_byte_identical(self, make):
        specs = [make() for _ in range(4)]
        serial = run_many(specs, jobs=1, cache=False)
        parallel = run_many(specs, jobs=4, cache=False)
        for left, right in zip(serial, parallel):
            assert _fingerprint(left) == _fingerprint(right)

    def test_cache_round_trip_replays_faulted_run(self, tmp_path):
        spec = _fluid_spec()
        first = run_many(
            [spec], jobs=1, cache=True, cache_dir=tmp_path
        )[0]
        # Second submission must be a cache hit that replays the stored
        # result exactly.
        second = run_many(
            [spec], jobs=1, cache=True, cache_dir=tmp_path
        )[0]
        assert _fingerprint(first) == _fingerprint(second)
        assert list(tmp_path.glob("*.json"))
