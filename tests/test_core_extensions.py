"""Tests for the §5 extensions: cluster-level compatibility, fractional
demands, hyper-parameter tuning, and multi-phase circles."""

import pytest

from repro.core.circle import JobCircle
from repro.core.cluster_compat import ClusterCompatibilityProblem
from repro.core.optimize import solve, solve_fractional
from repro.core.tuning import (
    TuningSuggestion,
    scale_compute,
    suggest_compute_scaling,
)
from repro.core.unified import UnifiedCircle
from repro.errors import CompatibilityError, GeometryError
from repro.units import gbps, ms
from repro.workloads.job import JobSpec


class TestClusterCompatibility:
    def _chain(self, comm=120):
        circles = [
            JobCircle.from_phases(j, 300 - comm, comm)
            for j in ("a", "b", "c", "d")
        ]
        problem = ClusterCompatibilityProblem.from_assignments(
            circles,
            {"a": ["L1"], "b": ["L1", "L2"], "c": ["L2", "L3"],
             "d": ["L3"]},
        )
        return circles, problem

    def test_chain_feasible_when_single_link_is_not(self):
        circles, problem = self._chain()
        assert not solve(circles).found  # 4 x 120 > 300
        result = problem.solve()
        assert result.compatible
        assert result.violated_links == []

    def test_solution_audits_clean_per_link(self):
        circles, problem = self._chain()
        result = problem.solve()
        # Verify per link: neighbours never overlap.
        for pair in (("a", "b"), ("b", "c"), ("c", "d")):
            sub = [c for c in circles if c.job_id in pair]
            unified = UnifiedCircle(sub)
            rotations = {j: result.rotations[j] for j in pair}
            assert unified.overlap_ticks(rotations) == 0, pair

    def test_non_neighbours_may_overlap(self):
        circles, problem = self._chain()
        result = problem.solve()
        # a and d share no link; nothing requires their arcs disjoint.
        # (With 4 x 120 on a 300 circle SOME non-neighbours must overlap.)
        overlaps = 0
        for pair in (("a", "c"), ("a", "d"), ("b", "d")):
            sub = [c for c in circles if c.job_id in pair]
            rotations = {j: result.rotations[j] for j in pair}
            overlaps += UnifiedCircle(sub).overlap_ticks(rotations)
        assert overlaps > 0

    def test_components_split_independent_jobs(self):
        circles = [
            JobCircle.from_phases(j, 100, 50) for j in ("a", "b", "c")
        ]
        problem = ClusterCompatibilityProblem.from_assignments(
            circles, {"a": ["L1"], "b": ["L1"], "c": ["L9"]}
        )
        assert problem.components() == [["a", "b"], ["c"]]

    def test_infeasible_neighbours_detected(self):
        circles = [
            JobCircle.from_phases("a", 40, 60),
            JobCircle.from_phases("b", 40, 60),
        ]
        problem = ClusterCompatibilityProblem.from_assignments(
            circles, {"a": ["L1"], "b": ["L1"]}
        )
        result = problem.solve()
        assert not result.compatible
        assert "L1" in result.violated_links

    def test_unknown_job_rejected(self):
        circles = [JobCircle.from_phases("a", 100, 50)]
        problem = ClusterCompatibilityProblem(circles)
        with pytest.raises(CompatibilityError):
            problem.assign("ghost", ["L1"])

    def test_duplicate_ids_rejected(self):
        circle = JobCircle.from_phases("a", 100, 50)
        with pytest.raises(CompatibilityError):
            ClusterCompatibilityProblem([circle, circle])

    def test_contended_links(self):
        circles = [
            JobCircle.from_phases(j, 100, 20) for j in ("a", "b", "c")
        ]
        problem = ClusterCompatibilityProblem.from_assignments(
            circles, {"a": ["L1", "L2"], "b": ["L1"], "c": ["L3"]}
        )
        contended = problem.contended_links()
        assert set(contended) == {"L1"}
        assert contended["L1"] == {"a", "b"}

    def test_different_periods_on_chain(self):
        circles = [
            JobCircle.from_phases("a", 30, 10),   # period 40
            JobCircle.from_phases("b", 50, 10),   # period 60
            JobCircle.from_phases("c", 30, 10),   # period 40
        ]
        problem = ClusterCompatibilityProblem.from_assignments(
            circles, {"a": ["L1"], "b": ["L1", "L2"], "c": ["L2"]}
        )
        result = problem.solve()
        assert result.compatible


class TestFractionalDemands:
    def test_half_demand_jobs_overlap_freely(self):
        circles = [
            JobCircle.from_phases("p", 40, 60, demand=0.5),
            JobCircle.from_phases("q", 40, 60, demand=0.5),
        ]
        outcome = solve_fractional(circles)
        assert outcome.found

    def test_full_demand_equivalent_to_classic(self):
        circles = [
            JobCircle.from_phases("p", 40, 60),
            JobCircle.from_phases("q", 40, 60),
        ]
        outcome = solve_fractional(circles)
        assert not outcome.found
        assert outcome.overlap >= 20

    def test_mixed_demands(self):
        # 0.6 + 0.6 > 1: the two big-demand jobs must avoid each other,
        # but each may overlap the 0.4 job.
        circles = [
            JobCircle.from_phases("big1", 60, 40, demand=0.6),
            JobCircle.from_phases("big2", 60, 40, demand=0.6),
            JobCircle.from_phases("small", 20, 80, demand=0.4),
        ]
        outcome = solve_fractional(circles, seed=1)
        assert outcome.found
        unified = UnifiedCircle(circles)
        assert unified.fractional_overlap_ticks(outcome.rotations) == 0

    def test_demand_coverage_levels(self):
        circles = [
            JobCircle.from_phases("p", 50, 50, demand=0.3),
            JobCircle.from_phases("q", 50, 50, demand=0.4),
        ]
        unified = UnifiedCircle(circles)
        levels = {
            round(level, 6)
            for _, _, level in unified.demand_coverage()
        }
        assert levels == {0.0, 0.7}

    def test_bad_capacity_rejected(self):
        circles = [JobCircle.from_phases("p", 50, 50)]
        with pytest.raises(GeometryError):
            UnifiedCircle(circles).fractional_overlap_ticks(capacity=0.0)
        with pytest.raises(CompatibilityError):
            solve_fractional(circles, capacity=0.0)


class TestTuning:
    def test_scale_compute_changes_period_only(self):
        circle = JobCircle.from_phases("j", 100, 110)
        scaled = scale_compute(circle, 1.1)
        assert scaled.perimeter == 220
        assert scaled.comm_ticks == 110

    def test_scale_multi_arc_rejected(self):
        circle = JobCircle.from_arcs("j", 100, [(10, 5), (50, 5)])
        with pytest.raises(CompatibilityError):
            scale_compute(circle, 1.1)

    def test_bad_scale_rejected(self):
        with pytest.raises(CompatibilityError):
            scale_compute(JobCircle.from_phases("j", 10, 10), 0.0)

    def test_already_compatible_returns_identity(self):
        circles = [
            JobCircle.from_phases("a", 210, 90),
            JobCircle.from_phases("b", 210, 90),
        ]
        suggestion = suggest_compute_scaling(circles)
        assert suggestion is not None
        assert suggestion.total_adjustment == 0.0
        assert suggestion.jobs_touched == 0

    def test_vgg_pair_fixed_by_small_bump(self):
        circles = [
            JobCircle.from_phases("a", 100, 110),
            JobCircle.from_phases("b", 100, 110),
        ]
        suggestion = suggest_compute_scaling(circles, max_scale_change=0.25)
        assert suggestion is not None
        assert suggestion.total_adjustment <= 0.25
        # Certificate verifies.
        unified = UnifiedCircle(list(suggestion.circles))
        assert unified.overlap_ticks(suggestion.rotations) == 0

    def test_hopeless_instance_returns_none(self):
        # Comm alone exceeds the circle even after max stretching.
        circles = [
            JobCircle.from_phases("a", 10, 200),
            JobCircle.from_phases("b", 10, 200),
        ]
        assert suggest_compute_scaling(
            circles, max_scale_change=0.1, steps=4
        ) is None

    def test_bad_args_rejected(self):
        with pytest.raises(CompatibilityError):
            suggest_compute_scaling([])
        with pytest.raises(CompatibilityError):
            suggest_compute_scaling(
                [JobCircle.from_phases("a", 10, 10)], max_scale_change=0.0
            )

    def test_jobs_touched_tolerates_float_noise(self):
        # Regression for the FP001 fix: a scale that differs from 1.0
        # only by accumulated rounding must not count as "touched".
        circles = (
            JobCircle.from_phases("a", 210, 90),
            JobCircle.from_phases("b", 210, 90),
        )
        suggestion = TuningSuggestion(
            scales={"a": 1.0 + 1e-12, "b": 1.05},
            circles=circles,
            rotations={"a": 0, "b": 0},
            total_adjustment=0.05,
        )
        assert suggestion.jobs_touched == 1


class TestMultiPhaseCircles:
    def test_multi_phase_spec_builds_multi_arc_circle(self):
        cap = gbps(42)
        spec = JobSpec.multi_phase(
            "mp",
            [(ms(50), ms(20) * cap), (ms(30), ms(15) * cap)],
        )
        circle = JobCircle.from_job(spec, cap, ticks_per_second=1000)
        assert circle.perimeter == 115
        assert circle.comm.intervals == ((50, 70), (100, 115))

    def test_segment_sums_validated(self):
        cap = gbps(42)
        with pytest.raises(Exception):
            JobSpec(
                "bad", compute_time=ms(100), comm_bytes=ms(50) * cap,
                segments=((ms(10), ms(10) * cap),),
            )

    def test_effective_segments_single_phase(self):
        spec = JobSpec("j", compute_time=0.1, comm_bytes=1e6)
        assert spec.effective_segments() == ((0.1, 1e6),)

    def test_multi_phase_compatibility(self):
        # Two jobs with interleaved bursts can be compatible even though
        # single-arc equivalents of the same totals would not be.
        cap = gbps(42)
        a = JobSpec.multi_phase(
            "a", [(ms(40), ms(30) * cap), (ms(40), ms(30) * cap)]
        )
        b = JobSpec.multi_phase(
            "b", [(ms(40), ms(30) * cap), (ms(40), ms(30) * cap)]
        )
        from repro.core.compatibility import CompatibilityChecker

        checker = CompatibilityChecker(capacity=cap)
        result = checker.check([a, b])
        assert result.compatible
