"""Tests for fairness metrics and incremental compatibility checking."""

import pytest

from repro.analysis.fairness import (
    contention_fraction,
    contention_shares,
    efficiency,
    jain_index,
)
from repro.cc.fair import FairSharing
from repro.cc.weighted import StaticWeighted
from repro.core.circle import JobCircle
from repro.core.compatibility import CompatibilityChecker
from repro.errors import SimulationError
from repro.experiments.common import BOTTLENECK, run_jobs
from repro.units import gbps, ms
from repro.workloads.job import JobSpec

CAP = gbps(42)


def _pair(comm_ms=110):
    return [
        JobSpec("J1", ms(100), ms(comm_ms) * CAP),
        JobSpec("J2", ms(100), ms(comm_ms) * CAP),
    ]


class TestJainIndex:
    def test_equal_rates_index_one(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_value(self):
        assert jain_index([3.0]) == pytest.approx(1.0)

    def test_starved_flow_lowers_index(self):
        assert jain_index([10.0, 0.0]) == pytest.approx(0.5)

    def test_two_to_one_split(self):
        # JFI of (2, 1) = 9 / (2 * 5) = 0.9.
        assert jain_index([2.0, 1.0]) == pytest.approx(0.9)

    def test_zero_rates_index_one(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_bad_inputs_rejected(self):
        with pytest.raises(SimulationError):
            jain_index([])
        with pytest.raises(SimulationError):
            jain_index([-1.0, 1.0])


class TestContentionMetrics:
    def test_fair_sharing_is_fair_during_contention(self):
        result = run_jobs(_pair(), FairSharing(), n_iterations=10)
        shares = contention_shares(result, ["J1", "J2"])
        assert jain_index(list(shares.values())) == pytest.approx(1.0)
        assert shares["J1"] == pytest.approx(CAP / 2, rel=1e-6)

    def test_weighted_sharing_is_unfair_during_contention(self):
        result = run_jobs(
            _pair(),
            StaticWeighted.from_aggressiveness_order(["J1", "J2"]),
            n_iterations=10,
        )
        shares = contention_shares(result, ["J1", "J2"])
        assert shares["J1"] > shares["J2"]
        assert jain_index(list(shares.values())) < 0.99

    def test_contention_fraction_drops_under_unfairness(self):
        fair = run_jobs(_pair(), FairSharing(), n_iterations=20)
        unfair = run_jobs(
            _pair(),
            StaticWeighted.from_aggressiveness_order(["J1", "J2"]),
            n_iterations=20,
        )
        assert contention_fraction(unfair, ["J1", "J2"]) < (
            contention_fraction(fair, ["J1", "J2"])
        )

    def test_interleaved_jobs_have_no_contention(self):
        specs = [
            JobSpec("J1", ms(210), ms(90) * CAP),
            JobSpec("J2", ms(210), ms(90) * CAP),
        ]
        result = run_jobs(
            specs, FairSharing(), n_iterations=5,
            start_offsets={"J2": ms(105)},  # phases never meet
        )
        assert contention_fraction(result, ["J1", "J2"]) == 0.0
        shares = contention_shares(result, ["J1", "J2"])
        assert all(v == 0.0 for v in shares.values())

    def test_efficiency_reflects_busy_bottleneck(self):
        result = run_jobs(_pair(), FairSharing(), n_iterations=10)
        value = efficiency(result, BOTTLENECK, CAP)
        # Comm is 220 of every 320 ms under the locked fair schedule.
        assert value == pytest.approx(220 / 320, rel=0.05)

    def test_efficiency_validation(self):
        result = run_jobs(_pair(), FairSharing(), n_iterations=2)
        with pytest.raises(SimulationError):
            efficiency(result, BOTTLENECK, 0.0)
        with pytest.raises(SimulationError):
            efficiency(result, BOTTLENECK, CAP, start=5.0, end=1.0)


class TestIncrementalCheck:
    def _checker(self):
        return CompatibilityChecker(capacity=CAP)

    def test_newcomer_fits_fixed_placement(self):
        checker = self._checker()
        placed = [JobCircle.from_phases("a", 210, 90)]
        new = JobCircle.from_phases("b", 210, 90)
        result = checker.check_incremental(placed, {"a": 0}, new)
        assert result.compatible
        assert result.certified
        assert result.method == "incremental"
        # Certificate keeps the placed rotation untouched.
        assert result.rotations["a"] == 0

    def test_newcomer_rejected_when_gap_too_small(self):
        checker = self._checker()
        placed = [
            JobCircle.from_phases("a", 100, 100),
            JobCircle.from_phases("b", 100, 100),
        ]
        rotations = {"a": 0, "b": 100}  # arcs [100,200) and [0,100)
        new = JobCircle.from_phases("c", 150, 50)
        result = checker.check_incremental(placed, rotations, new)
        assert not result.compatible
        assert result.certified
        assert result.overlap_ticks > 0

    def test_incremental_stricter_than_offline(self):
        # Offline re-rotation fits three 60-tick arcs in a 200 circle;
        # with two jobs pinned adjacent, the incremental check still
        # finds room — but pinning them to clip every gap below 60 makes
        # the incremental check fail while offline succeeds.
        checker = self._checker()
        a = JobCircle.from_phases("a", 140, 60)
        b = JobCircle.from_phases("b", 140, 60)
        c = JobCircle.from_phases("c", 140, 60)
        offline = checker.check_circles([a, b, c])
        assert offline.compatible
        # Pin a at [140, 200) and b at [40, 100): gaps are 40 and 40.
        pinned = {"a": 0, "b": 100}
        result = checker.check_incremental([a, b], pinned, c)
        assert not result.compatible

    def test_incremental_certificate_verifies(self):
        from repro.core.unified import UnifiedCircle

        checker = self._checker()
        placed = [
            JobCircle.from_phases("a", 300, 80),
            JobCircle.from_phases("b", 300, 80),
        ]
        rotations = {"a": 0, "b": 100}
        new = JobCircle.from_phases("c", 300, 80)
        result = checker.check_incremental(placed, rotations, new)
        assert result.compatible
        unified = UnifiedCircle(placed + [new])
        assert unified.overlap_ticks(result.rotations) == 0

    def test_different_periods(self):
        checker = self._checker()
        placed = [JobCircle.from_phases("a", 30, 10)]  # period 40
        new = JobCircle.from_phases("b", 50, 10)       # period 60
        result = checker.check_incremental(placed, {"a": 0}, new)
        assert result.compatible
        assert result.unified_perimeter == 120