"""Tests for the population sweep and the cross-fidelity experiment."""

import pytest

from repro.experiments import crossfidelity, sweep


class TestSweep:
    @pytest.fixture(scope="class")
    def equal_period_points(self):
        return sweep.run(
            fractions=(0.2, 0.45, 0.6), pairs_per_point=25, seed=1
        )

    def test_low_fraction_always_compatible(self, equal_period_points):
        assert equal_period_points[0].compatible_rate == 1.0

    def test_high_fraction_never_compatible(self, equal_period_points):
        assert equal_period_points[-1].compatible_rate == 0.0

    def test_payoff_grows_with_fraction(self, equal_period_points):
        low, mid, _ = equal_period_points
        assert mid.mean_speedup > low.mean_speedup

    def test_payoff_matches_one_plus_fraction(self, equal_period_points):
        # Equal-period pairs: fair lockstep C+2T over solo C+T is
        # (1+2f)/(1+f)... but the sweep's interleave payoff is ~1+f.
        low = equal_period_points[0]
        assert low.mean_speedup == pytest.approx(1.2, abs=0.03)

    def test_mixed_periods_rarely_compatible(self):
        points = sweep.run(
            fractions=(0.2, 0.4), pairs_per_point=25,
            same_period=False, seed=2,
        )
        assert all(p.compatible_rate <= 0.2 for p in points)

    def test_deterministic(self):
        a = sweep.run(fractions=(0.3,), pairs_per_point=10, seed=3)
        b = sweep.run(fractions=(0.3,), pairs_per_point=10, seed=3)
        assert a[0].compatible_rate == b[0].compatible_rate
        assert a[0].mean_speedup == b[0].mean_speedup

    def test_report_renders(self, equal_period_points):
        text = sweep.report(equal_period_points)
        assert "comm fraction" in text


class TestCrossFidelity:
    @pytest.fixture(scope="class")
    def result(self):
        # Shorter horizon than the bench but enough for ~8 iterations.
        return crossfidelity.run(duration=1.6, skip=2)

    def test_both_jobs_speed_up(self, result):
        for job in ("J1", "J2"):
            assert result.speedup(job) > 1.05, job

    def test_iterations_observed(self, result):
        for job in ("J1", "J2"):
            assert result.iterations[job] >= 5

    def test_unfair_mean_beats_phase_model_fair(self, result):
        # Even the fine model's unfair times beat the phase model's
        # fully-locked fair value of 320 ms by a wide margin.
        for job in ("J1", "J2"):
            assert result.unfair_ms[job] < 280

    def test_report_renders(self, result):
        text = result.report()
        assert "Cross-fidelity" in text
        assert "speedup" in text
