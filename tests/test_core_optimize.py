"""Solver tests: exact feasible sets, pairwise gcd reduction, DFS,
heuristics, the facade's escalation and certificates."""

import pytest

from repro.core.arcs import ArcSet
from repro.core.circle import JobCircle
from repro.core.optimize import (
    annealing_search,
    backtracking_search,
    exact_pair_feasible_rotations,
    exhaustive_search,
    feasible_rotations,
    greedy_search,
    pair_compatible,
    solve,
)
from repro.core.unified import UnifiedCircle
from repro.errors import CompatibilityError


def _verify_rotations(circles, rotations, capacity=1):
    """Ground-truth check: rotations must yield zero overlap."""
    assert UnifiedCircle(circles).overlap_ticks(
        rotations, capacity=capacity
    ) == 0


class TestFeasibleRotations:
    def test_matches_brute_force_same_period(self):
        placed = ArcSet(100, [(20, 30)])
        circle = JobCircle.from_phases("j", 80, 20)
        feasible = feasible_rotations(placed, circle, 100)
        for delta in range(100):
            expected = not placed.intersects(
                circle.rotate(delta).tiled_comm(100)
            )
            assert feasible.contains(delta) == expected, delta

    def test_matches_brute_force_tiled(self):
        placed = ArcSet(120, [(10, 25), (70, 10)])
        circle = JobCircle.from_phases("j", 30, 10)  # period 40, tiles x3
        feasible = feasible_rotations(placed, circle, 120)
        for delta in range(40):
            expected = not placed.intersects(
                circle.rotate(delta).tiled_comm(120)
            )
            assert feasible.contains(delta) == expected, delta

    def test_empty_placed_means_all_feasible(self):
        circle = JobCircle.from_phases("j", 30, 10)
        feasible = feasible_rotations(ArcSet(120), circle, 120)
        assert feasible.is_full

    def test_non_multiple_perimeter_rejected(self):
        from repro.errors import GeometryError
        with pytest.raises(GeometryError):
            feasible_rotations(
                ArcSet(100), JobCircle.from_phases("j", 30, 10), 100
            )


class TestExactPair:
    def test_matches_brute_force(self):
        first = JobCircle.from_phases("a", 30, 10)   # period 40
        second = JobCircle.from_phases("b", 45, 15)  # period 60
        feasible = exact_pair_feasible_rotations(first, second)
        unified = UnifiedCircle([first, second])
        g = 20  # gcd(40, 60)
        for residue in range(g):
            brute = any(
                unified.overlap_ticks({"b": delta}) == 0
                for delta in range(residue, 60, g)
            )
            # All lifts of a residue are equivalent, so check one.
            one_lift = unified.overlap_ticks({"b": residue}) == 0
            assert feasible.contains(residue) == one_lift
            assert brute == one_lift

    def test_equal_periods(self):
        first = JobCircle.from_phases("a", 60, 40)
        second = JobCircle.from_phases("b", 55, 45)
        feasible = exact_pair_feasible_rotations(first, second)
        assert not feasible.is_empty
        delta = pair_compatible(first, second)
        _verify_rotations([first, second], {"a": 0, "b": delta})

    def test_infeasible_pair(self):
        first = JobCircle.from_phases("a", 40, 60)
        second = JobCircle.from_phases("b", 40, 60)
        assert exact_pair_feasible_rotations(first, second).is_empty
        assert pair_compatible(first, second) is None

    def test_gcd_reduction_proves_infeasibility(self):
        # Arcs of 10 and 15 cannot mesh when gcd of the periods is 20:
        # 10 + 15 - 1 = 24 > 20 forbids every residue.
        first = JobCircle.from_phases("a", 30, 10)   # period 40
        second = JobCircle.from_phases("b", 45, 15)  # period 60
        assert exact_pair_feasible_rotations(first, second).is_empty

    def test_huge_lcm_is_cheap(self):
        # Nearly coprime periods: LCM is ~6e4 ticks but the gcd circle is
        # tiny, so this must return instantly.
        first = JobCircle.from_phases("a", 211, 42)   # period 253
        second = JobCircle.from_phases("b", 205, 46)  # period 251
        feasible = exact_pair_feasible_rotations(first, second)
        # gcd(253, 251) = 1: a single residue, necessarily infeasible
        # since any overlap anywhere kills it.
        assert feasible.perimeter == 1
        assert feasible.is_empty


class TestBacktracking:
    def test_finds_equal_period_packing(self):
        circles = [
            JobCircle.from_phases("a", 60, 40),
            JobCircle.from_phases("b", 70, 30),
            JobCircle.from_phases("c", 75, 25),
        ]
        outcome = backtracking_search(circles)
        assert outcome.found
        _verify_rotations(circles, outcome.rotations)

    def test_reports_infeasible_overload(self):
        circles = [
            JobCircle.from_phases("a", 40, 60),
            JobCircle.from_phases("b", 40, 60),
        ]
        outcome = backtracking_search(circles, candidate_mode="complete")
        assert not outcome.found
        assert outcome.complete

    def test_group5_instance(self):
        # Table 1 group 5: periods 330/330/165, arcs 50/50/8.
        circles = [
            JobCircle.from_phases("v19", 280, 50),
            JobCircle.from_phases("v16", 280, 50),
            JobCircle.from_phases("r50", 157, 8),
        ]
        outcome = backtracking_search(circles)
        assert outcome.found
        _verify_rotations(circles, outcome.rotations)

    def test_bad_candidate_mode_rejected(self):
        with pytest.raises(CompatibilityError):
            backtracking_search(
                [JobCircle.from_phases("a", 10, 10)],
                candidate_mode="psychic",
            )

    def test_single_job_trivial(self):
        outcome = backtracking_search([JobCircle.from_phases("a", 10, 10)])
        assert outcome.found


class TestGreedy:
    def test_finds_easy_packing(self):
        circles = [
            JobCircle.from_phases("a", 80, 20),
            JobCircle.from_phases("b", 80, 20),
            JobCircle.from_phases("c", 80, 20),
        ]
        outcome = greedy_search(circles)
        assert outcome.found
        _verify_rotations(circles, outcome.rotations)

    def test_reports_best_effort_on_overload(self):
        circles = [
            JobCircle.from_phases("a", 40, 60),
            JobCircle.from_phases("b", 40, 60),
        ]
        outcome = greedy_search(circles)
        assert not outcome.found
        # Best effort: the unavoidable overlap is 2*60 - 100 = 20.
        assert outcome.overlap == 20


class TestAnnealing:
    def test_finds_feasible_packing(self):
        circles = [
            JobCircle.from_phases("a", 70, 30),
            JobCircle.from_phases("b", 70, 30),
        ]
        outcome = annealing_search(circles, seed=0)
        assert outcome.found
        _verify_rotations(circles, outcome.rotations)

    def test_capacity_two(self):
        circles = [
            JobCircle.from_phases("a", 40, 60),
            JobCircle.from_phases("b", 40, 60),
            JobCircle.from_phases("c", 70, 30),
        ]
        outcome = annealing_search(circles, capacity=2, seed=0)
        assert outcome.found
        _verify_rotations(circles, outcome.rotations, capacity=2)

    def test_deterministic_given_seed(self):
        circles = [
            JobCircle.from_phases("a", 70, 30),
            JobCircle.from_phases("b", 70, 30),
        ]
        a = annealing_search(circles, seed=5)
        b = annealing_search(circles, seed=5)
        assert a.rotations == b.rotations

    def test_bad_capacity_rejected(self):
        with pytest.raises(CompatibilityError):
            annealing_search([JobCircle.from_phases("a", 10, 10)], capacity=0)


class TestExhaustive:
    def test_fine_grid_finds_packing(self):
        circles = [
            JobCircle.from_phases("a", 60, 40),
            JobCircle.from_phases("b", 55, 45),
        ]
        outcome = exhaustive_search(circles, steps_per_job=50)
        assert outcome.found
        _verify_rotations(circles, outcome.rotations)

    def test_coarse_grid_can_miss(self):
        # The tight triple leaves only a 5-tick window; 4 sectors miss it.
        circles = [
            JobCircle.from_phases("a", 60, 40),
            JobCircle.from_phases("b", 70, 30),
            JobCircle.from_phases("c", 75, 25),
        ]
        outcome = exhaustive_search(circles, steps_per_job=4)
        assert not outcome.found

    def test_budget_guard(self):
        circles = [
            JobCircle.from_phases(f"j{i}", 60, 40) for i in range(6)
        ]
        with pytest.raises(CompatibilityError):
            exhaustive_search(circles, steps_per_job=36, max_evaluations=10)


class TestSolveFacade:
    def test_single_job_trivial(self):
        outcome = solve([JobCircle.from_phases("a", 10, 10)])
        assert outcome.found and outcome.complete

    def test_utilization_bound_certificate(self):
        circles = [
            JobCircle.from_phases("a", 40, 60),
            JobCircle.from_phases("b", 40, 60),
        ]
        outcome = solve(circles)
        assert not outcome.found
        assert outcome.complete
        assert outcome.method == "utilization-bound"

    def test_pairwise_certificate(self):
        # BERT/VGG19 shape: VGG19's 145-tick arc exceeds BERT's 95-tick gap.
        circles = [
            JobCircle.from_phases("bert", 95, 55),    # period 150
            JobCircle.from_phases("vgg19", 105, 145),  # period 250
        ]
        outcome = solve(circles)
        assert not outcome.found
        assert outcome.complete
        assert outcome.method.startswith("pairwise")

    def test_exact_pair_path(self):
        circles = [
            JobCircle.from_phases("a", 701, 300),
            JobCircle.from_phases("b", 701, 300),
        ]
        outcome = solve(circles)
        assert outcome.found
        assert outcome.method == "exact-pair"
        _verify_rotations(circles, outcome.rotations)

    def test_three_jobs_exact(self):
        circles = [
            JobCircle.from_phases("a", 280, 50),
            JobCircle.from_phases("b", 280, 50),
            JobCircle.from_phases("c", 157, 8),
        ]
        outcome = solve(circles)
        assert outcome.found
        _verify_rotations(circles, outcome.rotations)

    def test_explicit_methods(self):
        circles = [
            JobCircle.from_phases("a", 70, 30),
            JobCircle.from_phases("b", 70, 30),
        ]
        for method in ("greedy", "annealing", "exhaustive", "backtracking"):
            outcome = solve(circles, method=method)
            assert outcome.found, method

    def test_unknown_method_rejected(self):
        with pytest.raises(CompatibilityError):
            solve([JobCircle.from_phases("a", 10, 10)], method="oracle")

    def test_empty_rejected(self):
        with pytest.raises(CompatibilityError):
            solve([])

    def test_solutions_always_verified(self):
        # Fuzz a few random-ish instances: whenever solve() claims
        # feasibility, the rotations must truly have zero overlap.
        import numpy as np

        rng = np.random.default_rng(12)
        for _ in range(20):
            circles = []
            for index in range(int(rng.integers(2, 4))):
                period = int(rng.integers(20, 120))
                comm = int(rng.integers(1, max(period // 2, 2)))
                circles.append(
                    JobCircle.from_phases(f"j{index}", period - comm, comm)
                )
            outcome = solve(circles, seed=1)
            if outcome.found:
                _verify_rotations(circles, outcome.rotations)
