"""Unit-conversion tests: the factor-of-8 and factor-of-1000 guards."""

import pytest

from repro.errors import ConfigError
from repro import units


class TestTimeConversions:
    def test_seconds_identity(self):
        assert units.seconds(2.5) == 2.5

    def test_milliseconds(self):
        assert units.milliseconds(250) == pytest.approx(0.25)

    def test_microseconds(self):
        assert units.microseconds(125) == pytest.approx(125e-6)

    def test_ms_alias(self):
        assert units.ms(100) == units.milliseconds(100)

    def test_us_alias(self):
        assert units.us(55) == units.microseconds(55)

    def test_to_milliseconds_roundtrip(self):
        assert units.to_milliseconds(units.ms(297)) == pytest.approx(297)

    def test_to_microseconds_roundtrip(self):
        assert units.to_microseconds(units.us(125)) == pytest.approx(125)


class TestTicks:
    def test_one_second_is_a_million_ticks(self):
        assert units.seconds_to_ticks(1.0) == 1_000_000

    def test_rounds_to_nearest(self):
        assert units.seconds_to_ticks(1.4e-6) == 1
        assert units.seconds_to_ticks(1.6e-6) == 2

    def test_zero(self):
        assert units.seconds_to_ticks(0.0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            units.seconds_to_ticks(-1e-3)

    def test_roundtrip(self):
        assert units.ticks_to_seconds(
            units.seconds_to_ticks(0.255)
        ) == pytest.approx(0.255)


class TestRates:
    def test_gbps_factor_of_8(self):
        # 8 Gbps = 1 GB/s
        assert units.gbps(8) == pytest.approx(1e9)

    def test_mbps(self):
        assert units.mbps(400) == pytest.approx(50e6)

    def test_to_gbps_roundtrip(self):
        assert units.to_gbps(units.gbps(42)) == pytest.approx(42)

    def test_50gbps_nic(self):
        # The paper's ConnectX-5 NIC: 50 Gbps = 6.25 GB/s.
        assert units.gbps(50) == pytest.approx(6.25e9)


class TestSizes:
    def test_kib(self):
        assert units.kib(1) == 1024

    def test_mib(self):
        assert units.mib(1) == 1024 ** 2

    def test_gib(self):
        assert units.gib(1) == 1024 ** 3

    def test_megabytes_decimal(self):
        assert units.megabytes(1) == 1e6

    def test_to_megabytes_roundtrip(self):
        assert units.to_megabytes(units.megabytes(550)) == pytest.approx(550)
