"""The linter runs clean on the repo's own source tree.

This is the merge gate the PR establishes: every invariant rule passes
on ``src/repro`` with an *empty* baseline, so any regression — a stray
``time.time()``, an inline ``* 1e-3``, a float ``==`` — fails CI here
and in the workflow's lint job.
"""

from __future__ import annotations

import json
from pathlib import Path

import repro
from repro.cli import main as experiments_main
from repro.lint import lint_paths
from repro.lint.baseline import Baseline
from repro.lint.cli import main as lint_main

#: The installed package tree (works from any cwd, src layout or not).
PACKAGE_DIR = Path(repro.__file__).resolve().parent


def test_package_tree_is_lint_clean():
    report = lint_paths([str(PACKAGE_DIR)])
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.ok, f"lint findings on src/repro:\n{rendered}"
    # Sanity: the walk actually visited the tree.
    assert report.files > 50


def test_committed_baseline_is_empty():
    path = Path(__file__).resolve().parents[1] / "lint-baseline.json"
    assert path.exists(), "lint-baseline.json must be committed"
    document = json.loads(path.read_text(encoding="utf-8"))
    assert document == {"version": 1, "findings": []}
    assert len(Baseline.load(path)) == 0


def test_lint_cli_exits_zero_on_package(capsys):
    assert lint_main([str(PACKAGE_DIR)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_lint_cli_json_mode(capsys):
    assert lint_main([str(PACKAGE_DIR), "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["summary"]["total"] == 0
    assert document["findings"] == []


def test_experiments_cli_mounts_lint_subcommand(capsys):
    assert experiments_main(["lint", str(PACKAGE_DIR)]) == 0
    assert "clean" in capsys.readouterr().out


def test_lint_cli_nonzero_on_finding(tmp_path, capsys):
    bad = tmp_path / "mod.py"
    bad.write_text("import time\nstart = time.time()\n", encoding="utf-8")
    assert lint_main([str(bad)]) == 1
    assert "DET002" in capsys.readouterr().out


def test_lint_cli_write_baseline_grandfathers(tmp_path, capsys):
    bad = tmp_path / "mod.py"
    bad.write_text("import time\nstart = time.time()\n", encoding="utf-8")
    baseline = tmp_path / "baseline.json"
    assert lint_main(
        [str(bad), "--write-baseline", "--baseline", str(baseline)]
    ) == 0
    capsys.readouterr()
    # With the baseline the same findings no longer fail the run...
    assert lint_main([str(bad), "--baseline", str(baseline)]) == 0
    assert "baselined" in capsys.readouterr().out
    # ...but a fresh finding still does.
    bad.write_text(
        "import time\nstart = time.time()\nstop = time.time()\n",
        encoding="utf-8",
    )
    assert lint_main([str(bad), "--baseline", str(baseline)]) == 1


def test_semantic_rules_registered():
    from repro.lint import all_rules, is_project_rule

    by_code = {rule.code: rule for rule in all_rules()}
    for code in ("ARCH001", "DET004", "UNIT002"):
        assert code in by_code, f"{code} missing from the registry"
        assert is_project_rule(by_code[code])


def test_semantic_pass_clean_on_package_tree():
    report = lint_paths(
        [str(PACKAGE_DIR)], select=["ARCH001", "DET004", "UNIT002"]
    )
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.ok, f"semantic findings on src/repro:\n{rendered}"


def test_jobs_parity_on_package_tree():
    serial = lint_paths([str(PACKAGE_DIR)], jobs=1)
    parallel = lint_paths([str(PACKAGE_DIR)], jobs=4)
    assert serial.to_dict() == parallel.to_dict()


def test_lint_cli_sarif_mode(capsys):
    assert lint_main([str(PACKAGE_DIR), "--format", "sarif"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {"ARCH001", "DET004", "UNIT002"} <= rule_ids
    assert run["results"] == []


def test_lint_cli_sarif_carries_findings(tmp_path, capsys):
    bad = tmp_path / "mod.py"
    bad.write_text("import time\nstart = time.time()\n", encoding="utf-8")
    assert lint_main([str(bad), "--format", "sarif"]) == 1
    document = json.loads(capsys.readouterr().out)
    results = document["runs"][0]["results"]
    assert [r["ruleId"] for r in results] == ["DET002"]
    region = results[0]["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 2
    assert results[0]["partialFingerprints"]["reproLint/v1"]


def test_lint_cli_github_mode(tmp_path, capsys):
    bad = tmp_path / "mod.py"
    bad.write_text("import time\nstart = time.time()\n", encoding="utf-8")
    assert lint_main([str(bad), "--format", "github"]) == 1
    out = capsys.readouterr().out
    assert "::error file=" in out
    assert "title=DET002" in out


def test_lint_cli_rejects_bad_jobs(capsys):
    assert lint_main([str(PACKAGE_DIR), "--jobs", "0"]) == 2
    assert "jobs" in capsys.readouterr().err
